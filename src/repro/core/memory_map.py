"""The unified memory-mapped IO address space (paper §3.2.1, Table 2).

Statistics live in different memory banks inside the ASIC, but TPPs see one
flat 16-bit virtual address space split into namespaces:

================= ========= ===================================================
namespace         base      resolves against
================= ========= ===================================================
``Switch:``       0x0000    the switch itself (global registers)
``PacketMetadata``0xA000    the packet being processed
``Queue:``        0xB000    the packet's egress queue
``Link:``         0xC000    the packet's egress port/link
``Sram:``         0xD000    the switch's scratch SRAM (writable, partitioned
                            across tasks by the control-plane agent)
================= ========= ===================================================

"To simplify discussion, we assume that the address is the same across all
network devices" — the layout below *is* that network-wide standard: every
switch's MMU implements it, and the assembler compiles mnemonics like
``[Queue:QueueSize]`` against it at compile time, exactly as the paper
describes.

The map also supports *dynamic symbols*: the control-plane agent allocates
scratch registers (e.g. RCP's per-link fair-share rate) and registers a
mnemonic such as ``Link:RCP-RateRegister`` for the allocated address, so
end-host programs keep using symbolic names.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.errors import ConfigurationError

# Namespace bases.
SWITCH_BASE = 0x0000
PACKET_METADATA_BASE = 0xA000
QUEUE_BASE = 0xB000
LINK_BASE = 0xC000
SRAM_BASE = 0xD000

# Region extents (exclusive upper bounds).
SWITCH_END = 0x1000
PACKET_METADATA_END = 0xB000
QUEUE_END = 0xC000
LINK_END = 0xD000
SRAM_END = SRAM_BASE + 0x0400  # 1024 scratch words per switch

#: Per-port scratch registers live inside the Link namespace; like SRAM
#: they are writable and handed out by the control-plane agent.
LINK_SCRATCH_BASE = LINK_BASE + 0x0100
LINK_SCRATCH_SLOTS = 16

#: Number of words of global scratch SRAM per switch.
SRAM_WORDS = SRAM_END - SRAM_BASE


@dataclass(frozen=True)
class StatDescriptor:
    """One named statistic in the address space."""

    name: str
    vaddr: int
    writable: bool
    description: str


_STANDARD_STATS = [
    # --- Switch: global registers (Table 2, "Per-Switch") ---------------
    StatDescriptor("Switch:SwitchID", 0x0000, False,
                   "unique switch identifier"),
    StatDescriptor("Switch:NumPorts", 0x0001, False,
                   "number of ports on this switch"),
    StatDescriptor("Switch:ClockLo", 0x0002, False,
                   "low word of the switch clock (ns)"),
    StatDescriptor("Switch:ClockHi", 0x0003, False,
                   "high word of the switch clock (ns)"),
    StatDescriptor("Switch:L2TableVersion", 0x0004, False,
                   "bumped on every L2 table update (ndb, [8])"),
    StatDescriptor("Switch:L2TableEntries", 0x0005, False,
                   "entries installed in the L2 table"),
    StatDescriptor("Switch:L3TableEntries", 0x0006, False,
                   "entries installed in the L3 LPM table"),
    StatDescriptor("Switch:TCAMEntries", 0x0007, False,
                   "entries installed in the TCAM"),
    StatDescriptor("Switch:TPPsExecuted", 0x0008, False,
                   "TPPs executed by this switch's TCPU"),
    StatDescriptor("Switch:PacketsSwitched", 0x0009, False,
                   "packets forwarded through the pipeline"),
    # --- PacketMetadata: per-packet registers (Table 2, "Per-Packet") ---
    StatDescriptor("PacketMetadata:InputPort", 0xA000, False,
                   "port the packet arrived on"),
    StatDescriptor("PacketMetadata:OutputPort", 0xA001, False,
                   "egress port selected by the lookup stage"),
    StatDescriptor("PacketMetadata:MatchedEntryID", 0xA002, False,
                   "id of the flow-table entry that matched (ndb)"),
    StatDescriptor("PacketMetadata:MatchedEntryVersion", 0xA003, False,
                   "version stamp of the matched entry (ndb)"),
    StatDescriptor("PacketMetadata:QueueID", 0xA004, False,
                   "egress queue the packet will occupy"),
    StatDescriptor("PacketMetadata:PacketLength", 0xA005, False,
                   "wire length of the packet in bytes"),
    StatDescriptor("PacketMetadata:ArrivalTimeLo", 0xA006, False,
                   "low word of the packet's arrival timestamp (ns)"),
    StatDescriptor("PacketMetadata:ArrivalTimeHi", 0xA007, False,
                   "high word of the packet's arrival timestamp (ns)"),
    StatDescriptor("PacketMetadata:AlternateRoutes", 0xA008, False,
                   "number of alternate egress candidates ([11])"),
    StatDescriptor("PacketMetadata:MatchedEntryHits", 0xA009, False,
                   "match counter of the entry that forwarded this packet"
                   " (Table 2's flow-table counters)"),
    # --- Queue: the packet's egress queue (Table 2, "Per-Queue") --------
    StatDescriptor("Queue:QueueSize", 0xB000, False,
                   "instantaneous occupancy in bytes"),
    StatDescriptor("Queue:QueueSizePackets", 0xB001, False,
                   "instantaneous occupancy in packets"),
    StatDescriptor("Queue:BytesEnqueued", 0xB002, False,
                   "cumulative bytes admitted"),
    StatDescriptor("Queue:BytesDropped", 0xB003, False,
                   "cumulative bytes tail-dropped"),
    StatDescriptor("Queue:PacketsEnqueued", 0xB004, False,
                   "cumulative packets admitted"),
    StatDescriptor("Queue:PacketsDropped", 0xB005, False,
                   "cumulative packets tail-dropped"),
    StatDescriptor("Queue:AvgQueueSize", 0xB006, False,
                   "EWMA of occupancy, updated by the stats sampler"),
    # --- Link: the packet's egress port (Table 2, "Per-Port") -----------
    StatDescriptor("Link:RX-Utilization", 0xC000, False,
                   "EWMA offered load into this link, milli-fraction "
                   "of capacity"),
    StatDescriptor("Link:TX-Utilization", 0xC001, False,
                   "EWMA drain rate of this link, milli-fraction"),
    StatDescriptor("Link:BytesReceived", 0xC002, False,
                   "cumulative bytes received on this port"),
    StatDescriptor("Link:BytesTransmitted", 0xC003, False,
                   "cumulative bytes transmitted on this port"),
    StatDescriptor("Link:FramesReceived", 0xC004, False,
                   "cumulative frames received on this port"),
    StatDescriptor("Link:FramesTransmitted", 0xC005, False,
                   "cumulative frames transmitted on this port"),
    StatDescriptor("Link:CapacityMbps", 0xC006, False,
                   "line rate of this link in Mb/s"),
    StatDescriptor("Link:SNR-MilliDb", 0xC007, False,
                   "wireless channel SNR in milli-dB (0 on wired links)"),
]


def _link_scratch_descriptor(slot: int) -> StatDescriptor:
    return StatDescriptor(f"Link:Reg{slot}", LINK_SCRATCH_BASE + slot, True,
                          f"per-port scratch register {slot}")


def _sram_descriptor(word: int) -> StatDescriptor:
    return StatDescriptor(f"Sram:Word{word}", SRAM_BASE + word, True,
                          f"global scratch SRAM word {word}")


#: Lazily built cache behind :meth:`MemoryMap.shared_standard`.
_SHARED_STANDARD: Optional["MemoryMap"] = None


class MemoryMap:
    """Network-wide virtual address layout plus dynamic symbols.

    One instance is typically shared by the assembler, the control-plane
    agent, and all switches in an experiment; :meth:`standard` builds the
    fixed layout described in the module docs.
    """

    def __init__(self) -> None:
        self._by_name: Dict[str, StatDescriptor] = {}
        self._by_vaddr: Dict[int, StatDescriptor] = {}
        self._aliases: Dict[str, str] = {}

    @classmethod
    def standard(cls) -> "MemoryMap":
        """The network-wide standard layout."""
        memory_map = cls()
        for descriptor in _STANDARD_STATS:
            memory_map.add(descriptor)
        for slot in range(LINK_SCRATCH_SLOTS):
            memory_map.add(_link_scratch_descriptor(slot))
        for word in range(SRAM_WORDS):
            memory_map.add(_sram_descriptor(word))
        # Aliases for the exact spellings used in the paper's listings.
        memory_map.alias("Switch:ID", "Switch:SwitchID")
        memory_map.alias("Link:QueueSize", "Queue:QueueSize")
        return memory_map

    @classmethod
    def shared_standard(cls) -> "MemoryMap":
        """A process-wide cached :meth:`standard` map, for read-only
        name resolution.

        Building the standard layout registers ~1100 descriptors, which
        dominates any analysis that merely needs to *resolve* a handful
        of names (the static race/relational passes run once per
        program).  Callers must treat the result as immutable — anyone
        who wants to ``add``/``alias`` builds their own ``standard()``.
        """
        global _SHARED_STANDARD
        if _SHARED_STANDARD is None:
            _SHARED_STANDARD = cls.standard()
        return _SHARED_STANDARD

    # ------------------------------------------------------------------ #
    # Registration
    # ------------------------------------------------------------------ #

    def add(self, descriptor: StatDescriptor) -> None:
        """Register a statistic; name and address must both be unused."""
        key = descriptor.name.lower()
        if key in self._by_name:
            raise ConfigurationError(f"duplicate name {descriptor.name!r}")
        if descriptor.vaddr in self._by_vaddr:
            raise ConfigurationError(
                f"duplicate address {descriptor.vaddr:#06x} "
                f"({descriptor.name!r} vs "
                f"{self._by_vaddr[descriptor.vaddr].name!r})")
        self._by_name[key] = descriptor
        self._by_vaddr[descriptor.vaddr] = descriptor

    def alias(self, name: str, target: str) -> None:
        """Make ``name`` resolve to the same address as ``target``."""
        if target.lower() not in self._by_name:
            raise ConfigurationError(f"alias target {target!r} unknown")
        self._aliases[name.lower()] = target.lower()

    def register_symbol(self, name: str, vaddr: int) -> None:
        """Bind a task-allocated mnemonic (e.g. ``Link:RCP-RateRegister``)
        to an existing scratch address."""
        descriptor = self._by_vaddr.get(vaddr)
        if descriptor is None:
            raise ConfigurationError(f"address {vaddr:#06x} not mapped")
        if not descriptor.writable:
            raise ConfigurationError(
                f"symbols may only name writable scratch, "
                f"{descriptor.name!r} is read-only")
        self._aliases[name.lower()] = descriptor.name.lower()

    def unregister_symbol(self, name: str) -> None:
        """Remove a dynamic symbol (no-op if absent)."""
        self._aliases.pop(name.lower(), None)

    # ------------------------------------------------------------------ #
    # Lookup
    # ------------------------------------------------------------------ #

    def resolve(self, name: str) -> int:
        """Mnemonic → virtual address (case-insensitive)."""
        key = name.lower()
        key = self._aliases.get(key, key)
        descriptor = self._by_name.get(key)
        if descriptor is None:
            raise KeyError(f"unknown statistic {name!r}")
        return descriptor.vaddr

    def describe(self, vaddr: int) -> Optional[StatDescriptor]:
        """Descriptor at an address, or ``None`` if unmapped."""
        return self._by_vaddr.get(vaddr)

    def name_of(self, vaddr: int) -> str:
        """Readable name for an address (hex literal if unmapped)."""
        descriptor = self._by_vaddr.get(vaddr)
        return descriptor.name if descriptor else f"{vaddr:#06x}"

    def is_writable(self, vaddr: int) -> bool:
        """Whether TPPs may STORE to this address."""
        descriptor = self._by_vaddr.get(vaddr)
        return descriptor is not None and descriptor.writable

    def names(self) -> Tuple[str, ...]:
        """All canonical statistic names."""
        return tuple(d.name for d in self._by_name.values())


def region_of(vaddr: int) -> str:
    """Namespace name for an address (used in error messages)."""
    if SWITCH_BASE <= vaddr < SWITCH_END:
        return "Switch"
    if PACKET_METADATA_BASE <= vaddr < PACKET_METADATA_END:
        return "PacketMetadata"
    if QUEUE_BASE <= vaddr < QUEUE_END:
        return "Queue"
    if LINK_BASE <= vaddr < LINK_END:
        return "Link"
    if SRAM_BASE <= vaddr < SRAM_END:
        return "Sram"
    return "unmapped"


def is_sram(vaddr: int) -> bool:
    """Whether an address falls in the global scratch SRAM region."""
    return SRAM_BASE <= vaddr < SRAM_END


def is_link_scratch(vaddr: int) -> bool:
    """Whether an address is a per-port scratch register."""
    return LINK_SCRATCH_BASE <= vaddr < LINK_SCRATCH_BASE + LINK_SCRATCH_SLOTS
