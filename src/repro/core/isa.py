"""The TPP instruction set (paper Table 1, §3.2.3).

Every instruction fits in exactly 4 bytes — the paper: "we were able to
encode an instruction and its operands in a 4-byte integer".  The layout is

====== ======= ====================================================
field  width   meaning
====== ======= ====================================================
opcode 8 bits  one of :class:`Opcode`
addr   16 bits switch virtual address (see ``memory_map``)
offset 8 bits  packet-memory word offset (interpretation per opcode)
====== ======= ====================================================

Operand conventions (matching the paper's listings):

- ``PUSH addr`` / ``POP addr`` use the TPP's stack pointer; ``offset`` is
  unused.
- ``LOAD addr, offset`` copies ``switch[addr]`` into packet memory at the
  *effective address* of ``offset`` (hop-relative in hop mode, absolute
  otherwise).  ``STORE addr, offset`` copies the other way.
- ``CSTORE addr, offset``: the conditional store of §3.2.3
  (``CSTORE dst, cond, src``): ``cond`` is the packet word at absolute
  offset ``offset`` and ``src`` the word after it.  The old value of
  ``switch[addr]`` is written back over ``cond`` so the end-host can tell
  whether the store won — this is what makes the primitive linearizable.
- ``CEXEC addr, offset``: conditional execute; ``mask`` is the packet word
  at absolute offset ``offset`` and ``value`` the word after it.  Execution
  of *all subsequent instructions* on this switch is disabled unless
  ``(switch[addr] & mask) == value``.
- Arithmetic (``ADD``..``MAX``) accumulates a switch statistic into packet
  memory: ``packet[ea(offset)] = packet[ea(offset)] OP switch[addr]``.
  ``MIN`` is how a single packet word can collect the minimum fair-share
  rate along a path.

Conditional operands (CSTORE/CEXEC) use **absolute** word offsets even in
hop-addressed programs, so a program's immediates (materialized by the
assembler into a literal pool) resolve to the same bytes on every hop.
"""

from __future__ import annotations

import enum
import struct
from dataclasses import dataclass
from typing import Iterable, List

from repro.core.exceptions import TPPEncodingError

INSTRUCTION_BYTES = 4
_STRUCT = struct.Struct("!BHB")


class Opcode(enum.IntEnum):
    """Operation codes.  Values are wire-stable."""

    NOP = 0x00
    LOAD = 0x01
    STORE = 0x02
    PUSH = 0x03
    POP = 0x04
    CSTORE = 0x05
    CEXEC = 0x06
    ADD = 0x10
    SUB = 0x11
    AND = 0x12
    OR = 0x13
    XOR = 0x14
    MIN = 0x15
    MAX = 0x16


#: Opcodes that read a packet operand pair at (offset, offset+1 word).
PAIR_OPERAND_OPCODES = frozenset({Opcode.CSTORE, Opcode.CEXEC})

#: Opcodes whose packet operand is hop-relative in hop-addressed programs.
HOP_RELATIVE_OPCODES = frozenset({
    Opcode.LOAD, Opcode.STORE, Opcode.ADD, Opcode.SUB, Opcode.AND,
    Opcode.OR, Opcode.XOR, Opcode.MIN, Opcode.MAX,
})

#: Opcodes that write into switch memory (need write permission).
SWITCH_WRITING_OPCODES = frozenset({Opcode.STORE, Opcode.POP, Opcode.CSTORE})


@dataclass(frozen=True)
class Instruction:
    """One decoded TPP instruction."""

    opcode: Opcode
    addr: int = 0
    offset: int = 0

    def __post_init__(self) -> None:
        # Normalize the opcode through the enum so direct construction
        # with a raw int (e.g. ``Instruction(0x99, ...)``) cannot smuggle
        # an undecodable byte onto the wire; the frozen dataclass needs
        # object.__setattr__ for the write-back.
        if not isinstance(self.opcode, Opcode):
            try:
                object.__setattr__(self, "opcode", Opcode(self.opcode))
            except ValueError as exc:
                raise TPPEncodingError(
                    f"unknown opcode {self.opcode!r}") from exc
        if not 0 <= self.addr <= 0xFFFF:
            raise TPPEncodingError(f"switch address out of range: "
                                   f"{self.addr:#x}")
        if not 0 <= self.offset <= 0xFF:
            raise TPPEncodingError(f"packet offset out of range: "
                                   f"{self.offset}")

    def encode(self) -> bytes:
        """Serialize to the 4-byte wire format."""
        return _STRUCT.pack(int(self.opcode), self.addr, self.offset)

    @classmethod
    def decode(cls, raw: bytes) -> "Instruction":
        """Parse 4 bytes into an instruction."""
        if len(raw) != INSTRUCTION_BYTES:
            raise TPPEncodingError(
                f"instruction must be {INSTRUCTION_BYTES} bytes, "
                f"got {len(raw)}")
        opcode_value, addr, offset = _STRUCT.unpack(raw)
        try:
            opcode = Opcode(opcode_value)
        except ValueError as exc:
            raise TPPEncodingError(
                f"unknown opcode {opcode_value:#x}") from exc
        return cls(opcode, addr, offset)


def encode_program(instructions: Iterable[Instruction]) -> bytes:
    """Serialize a sequence of instructions back-to-back."""
    return b"".join(instruction.encode() for instruction in instructions)


def decode_program(raw: bytes) -> List[Instruction]:
    """Parse back-to-back 4-byte instructions."""
    if len(raw) % INSTRUCTION_BYTES:
        raise TPPEncodingError(
            f"instruction stream length {len(raw)} is not a multiple "
            f"of {INSTRUCTION_BYTES}")
    return [Instruction.decode(raw[i:i + INSTRUCTION_BYTES])
            for i in range(0, len(raw), INSTRUCTION_BYTES)]
