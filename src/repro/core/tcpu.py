"""The tiny CPU (paper §3.3).

The TCPU sits in the dataplane pipeline after the L2/L3/TCAM lookup stages
and just before the packet is copied into switch memory (Figure 3), so by
the time a TPP reaches it the egress port is known and ``Queue:``/``Link:``
addresses resolve against the link the packet is about to use.

Two things live here:

- :class:`TCPU` — the functional interpreter: executes a TPP's instructions
  sequentially against an :class:`~repro.core.mmu.MMU`, with the CEXEC
  kill-switch, CSTORE's linearizable conditional update, stack/hop/absolute
  packet-memory addressing, and per-packet fault stamping.
- :class:`PipelineModel` — the timing model of the 5-stage RISC pipeline
  (§3.3): instruction fetch is completed by the header parser; the
  remaining decode/execute/memory-read/memory-write stages give a latency
  of 4 cycles and a pipelined throughput of 1 instruction per cycle.
"""

from __future__ import annotations

import math
import os
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.core.exceptions import FaultCode, TCPUFault
from repro.core.fastpath import (
    DEFAULT_PROGRAM_CACHE_CAPACITY,
    CompiledEntry,
    ProgramCache,
    build_batch_plan,
    compile_program,
)
from repro.core.isa import HOP_RELATIVE_OPCODES, Instruction, Opcode
from repro.core.mmu import MMU, ExecutionContext
from repro.core.racecheck import (
    FleetRaceTable,
    RaceDiagnostic,
    summarize_certificate,
)
from repro.core.tpp import AddressingMode, FLAG_DONE, TPPSection

#: Default per-TPP instruction budget: the paper's "restricting TPPs to
#: (say) five instructions per-packet requires only 20 bytes".
DEFAULT_MAX_INSTRUCTIONS = 5

#: Valid ``TCPU(race_mode=...)`` settings: ``off`` skips fleet race
#: analysis, ``warn`` trusts but records conflicts, ``enforce`` refuses
#: certificates that introduce an error-severity race.
RACE_MODES = ("off", "warn", "enforce")


def _fastpath_default() -> bool:
    """Compile-once fast path is on unless ``REPRO_TPP_FASTPATH=0``.

    The environment switch exists so CI (and a debugging session) can run
    the whole simulator through the reference interpreter without touching
    any construction site.
    """
    return os.environ.get("REPRO_TPP_FASTPATH", "1") != "0"


def batch_default() -> bool:
    """Batched execution is on unless ``REPRO_TPP_BATCH=0``.

    Mirrors :func:`_fastpath_default`: the opt-out exists so CI can run
    the whole simulator packet-at-a-time (the reference arrival order)
    and so a debugging session can rule batching out in one line.
    """
    return os.environ.get("REPRO_TPP_BATCH", "1") != "0"

#: Memoized ``repro.core.batch.execute_batch`` (deferred import).
_BATCH_IMPL = None

#: Pipeline stages after the header parser has fetched the instructions.
PIPELINE_STAGES = ("decode", "execute", "memory-read", "memory-write")
PIPELINE_LATENCY_CYCLES = len(PIPELINE_STAGES)  # 4, as in the paper


@dataclass(slots=True)
class ExecutionReport:
    """What happened when one switch executed one TPP."""

    executed: int = 0
    skipped: int = 0
    fault: FaultCode = FaultCode.NONE
    cexec_disabled_at: Optional[int] = None
    cycles: int = 0
    switch_writes: List[Tuple[int, int]] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when the whole program ran without faulting."""
        return self.fault == FaultCode.NONE


class TCPU:
    """Executes TPPs against one switch's MMU."""

    def __init__(self, mmu: MMU,
                 max_instructions: int = DEFAULT_MAX_INSTRUCTIONS,
                 name: str = "tcpu", compile: Optional[bool] = None,
                 cache_capacity: int = DEFAULT_PROGRAM_CACHE_CAPACITY,
                 race_mode: str = "warn",
                 batch: Optional[bool] = None,
                 fence_values: Optional[dict] = None) -> None:
        if race_mode not in RACE_MODES:
            raise ValueError(
                f"race_mode must be one of {RACE_MODES}, "
                f"got {race_mode!r}")
        self.mmu = mmu
        self.max_instructions = max_instructions
        self.name = name
        self.tpps_executed = 0
        self.instructions_executed = 0
        self.faults = 0
        #: ``compile=False`` forces the reference interpreter (debugging,
        #: differential testing); ``None`` follows ``REPRO_TPP_FASTPATH``.
        self.compile_enabled = (_fastpath_default() if compile is None
                                else bool(compile))
        #: Compile-once program cache (LRU, per-TCPU because compiled
        #: closures bind this switch's pre-resolved MMU accessors).
        self.cache = ProgramCache(cache_capacity)
        self._cache_layout_version = mmu.layout_version
        # One-entry memo over the LRU: back-to-back executions of the
        # same program (the overwhelmingly common case on a switch that
        # serves one active task) skip the OrderedDict bookkeeping.
        self._last_key: Optional[bytes] = None
        self._last_entry: Optional[CompiledEntry] = None
        #: Verifier certificates by program key.  Certificates do NOT
        #: survive MMU layout bumps: their TPP005/TPP007 address facts
        #: were proven against the bindings in force at verification
        #: time, so :meth:`_sweep_stale` drops the whole table when
        #: ``layout_version`` moves (same trigger that already clears
        #: the compiled-program cache).
        self._verified: dict = {}
        #: Executions that ran the check-elided verified closures.
        self.verified_executions = 0
        #: Fleet race policy for :meth:`trust` (see :data:`RACE_MODES`).
        self.race_mode = race_mode
        #: Stable-register bindings for this switch (vaddr → value),
        #: e.g. its ``Switch:SwitchID``.  Lets the race table discount
        #: accesses behind constant fences that can never pass here.
        self.fence_values = dict(fence_values) if fence_values else None
        #: Incremental race table over the trusted certificates' SRAM
        #: access sets (:mod:`repro.core.racecheck`).
        self.fleet = FleetRaceTable(fence_values=self.fence_values)
        #: Race diagnostics recorded by ``warn``-mode admissions.
        self.race_conflicts: List[RaceDiagnostic] = []
        #: Certificates ``enforce`` mode turned away.
        self.certificates_refused = 0
        #: Certificates dropped by MMU layout-version sweeps.
        self.certificates_swept = 0
        #: ``batch=False`` forces packet-at-a-time execution even through
        #: :meth:`execute_batch`; ``None`` follows ``REPRO_TPP_BATCH``.
        self.batch_enabled = (batch_default() if batch is None
                              else bool(batch))
        # -- Batched-execution accounting (repro.core.batch) --------------
        #: ``execute_batch`` calls that processed at least one section.
        self.batches_executed = 0
        #: Sections that went through ``execute_batch`` (any lane).
        self.batched_tpps = 0
        #: Batches / sections that ran the vectorized numpy kernel.
        self.vector_batches = 0
        self.vector_tpps = 0
        #: The subset of vectorized batches / sections that engaged a
        #: write-capable lane (accumulate / claim / private-scatter
        #: SRAM dataflow classes).
        self.vector_write_batches = 0
        self.vector_write_tpps = 0
        #: Vectorized attempts aborted mid-kernel (a reader faulted);
        #: the batch re-ran packet-at-a-time on pristine memory.
        self.batch_fallbacks = 0
        #: Histogram of batch sizes seen: ``{occupancy: count}``.
        self.batch_occupancy: dict = {}
        #: Why batches took the safe lane: ``{reason: count}`` over
        #: ``uncertified`` (no plan/certificate, or guard miss),
        #: ``cexec``, ``write_dataflow`` (writes without a vectorizable
        #: dataflow class), ``unstable_read``, ``non_uniform`` (mixed
        #: flags/geometry/hop counter/task ids), ``sram_protection``
        #: (a touched word is foreign to the batch's task),
        #: ``fault_rewind`` (mid-kernel fault; also counted in
        #: ``batch_fallbacks``) and ``no_numpy``.
        self.batch_demotions: dict = {}

    # ------------------------------------------------------------------ #
    # Certificates
    # ------------------------------------------------------------------ #

    def trust(self, certificate) -> bool:
        """Register a :class:`~repro.core.verifier.VerifiedProgram`.

        Future executions of the fingerprinted program whose section
        passes the certificate's per-execution guard run with the
        per-instruction bounds/stack checks elided.  Re-trusting a key
        replaces the previous certificate.  Safe unconditionally: a
        section failing the guard silently uses the checked closures.

        Unless ``race_mode`` is ``off``, the certificate's SRAM access
        sets are admitted to the fleet race table first: in ``enforce``
        mode a certificate introducing an error-severity race
        (``TPP020``/``TPP022``) against an already-trusted one is
        refused (returns ``False``); in ``warn`` mode it is trusted and
        the conflict lands in :attr:`race_conflicts`.  Returns whether
        the certificate is trusted afterwards.
        """
        self._sweep_stale()
        key = certificate.program_key
        previous = self._verified.get(key)
        if previous is certificate:
            return True  # idempotent: keep the compiled entry warm
        if self.race_mode != "off":
            if previous is not None:
                self.fleet.revoke(previous)
            summary = summarize_certificate(certificate)
            introduced = self.fleet.admit(summary)
            if any(d.severity == "error" for d in introduced):
                if self.race_mode == "enforce":
                    self.fleet.revoke(summary)
                    if previous is not None:
                        # Restore the certificate we displaced above.
                        self.fleet.admit(summarize_certificate(previous))
                    self.certificates_refused += 1
                    return False
            if introduced:
                self.race_conflicts.extend(introduced)
        self._verified[key] = certificate
        # Force a recompile so the verified closures get attached.
        self.cache.discard(key)
        if self._last_key == key:
            self._last_key = None
            self._last_entry = None
        return True

    def distrust(self, certificate_or_key) -> None:
        """Drop a certificate (program key or certificate object)."""
        key = getattr(certificate_or_key, "program_key",
                      certificate_or_key)
        previous = self._verified.pop(key, None)
        if previous is not None:
            self.fleet.revoke(previous)
            self.cache.discard(key)
            if self._last_key == key:
                self._last_key = None
                self._last_entry = None

    @property
    def certificates(self) -> int:
        """Number of trusted program certificates."""
        self._sweep_stale()
        return len(self._verified)

    def _sweep_stale(self) -> None:
        """Drop certificates (and compiled programs) proven against a
        superseded MMU layout.

        ``trust`` certificates pin address-resolution facts (TPP005) and
        SRAM task ownership (TPP007) that a ``bind_reader``/
        ``bind_writer`` re-binding can silently change, so a
        ``layout_version`` bump invalidates the certificate table the
        same way it already invalidates the compiled-program cache.
        Callers re-admit programs through their admission path, which
        re-verifies against the live layout.
        """
        version = self.mmu.layout_version
        if version == self._cache_layout_version:
            return
        self.cache.clear()
        self._cache_layout_version = version
        self._last_key = None
        self._last_entry = None
        if self._verified:
            self.certificates_swept += len(self._verified)
            self._verified.clear()
        self.fleet = FleetRaceTable(fence_values=self.fence_values)

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #

    def execute(self, tpp: TPPSection,
                ctx: ExecutionContext) -> ExecutionReport:
        """Run a TPP at this switch.  Never raises on program errors:
        faults are stamped into the TPP's flags and reported."""
        report = ExecutionReport()
        if tpp.flags & FLAG_DONE:
            return report

        if len(tpp.instructions) > self.max_instructions:
            self._fault(tpp, report, TCPUFault(
                FaultCode.TOO_MANY_INSTRUCTIONS,
                f"{len(tpp.instructions)} instructions > limit "
                f"{self.max_instructions}"))
            self._advance_hop(tpp)
            return report

        ctx.task_id = tpp.task_id
        if self.compile_enabled:
            return self._run_entry(tpp, ctx, self._compiled_entry(tpp),
                                   report)
        return self._run_interpreted(tpp, ctx, report)

    def execute_batch(self, sections, ctxs, arena=None):
        """Execute a group of same-program TPPs in one pass.

        Semantically identical to calling :meth:`execute` once per
        ``(section, ctx)`` pair in order — same reports, same packet
        memory bytes, same fault stamping, same counters — but the
        program-cache lookup and certificate guard are paid once per
        batch, and eligible batches (verified certificate, no CEXEC, no
        switch writes, batch-stable reads) run a vectorized numpy
        kernel over an arena of packet memories.  See
        :mod:`repro.core.batch` for the engine and the eligibility
        rules.  ``arena`` optionally passes a resident
        :class:`~repro.core.batch.BatchArena` the sections already live
        in (the benchmark harness does this to amortize adoption).
        """
        global _BATCH_IMPL
        if _BATCH_IMPL is None:
            # Deferred to break the tcpu <-> batch import cycle; memoized
            # because the import-machinery lookup is measurable per batch.
            from repro.core.batch import execute_batch
            _BATCH_IMPL = execute_batch
        return _BATCH_IMPL(self, sections, ctxs, arena)

    def _run_entry(self, tpp: TPPSection, ctx: ExecutionContext,
                   entry: CompiledEntry,
                   report: ExecutionReport) -> ExecutionReport:
        """Run one section through compiled closures (shared by
        :meth:`execute` and the batch engine's safe lane; the caller has
        already done the done/limit prologue and set ``ctx.task_id``)."""
        steps = entry.steps
        # Per-execution certificate guard: the verified (elided)
        # closures may only run when the section's geometry matches
        # the certificate exactly and the hop/SP counter is inside
        # the proven-safe interval.  Anything else — a corrupted
        # header, a replayed section, a later hop of a stack
        # program — silently falls back to the checked closures,
        # which fault exactly like the interpreter.
        if (entry.verified_steps is not None
                and len(tpp.memory) == entry.memory_len
                and tpp.perhop_len_bytes == entry.perhop_len_bytes
                and entry.guard_lo <= tpp.hop_or_sp <= entry.guard_hi):
            self.verified_executions += 1
            if not entry.has_cexec:
                # Tight loop: no CEXEC means no enabled/skip
                # bookkeeping either.  MMU accessors can still fault
                # (unbound statistic, SRAM domain) — per-switch
                # state the certificate deliberately doesn't cover.
                executed = 0
                try:
                    for step in entry.verified_steps:
                        step(tpp, ctx, report)
                        executed += 1
                except TCPUFault as fault:
                    self._fault(tpp, report, fault)
                report.executed = executed
                self._advance_hop(tpp)
                report.cycles = pipeline_cycles(executed)
                self.tpps_executed += 1
                self.instructions_executed += executed
                return report
            steps = entry.verified_steps
        enabled = True
        executed = 0
        index = 0
        # The faulting instruction is *not* counted as executed (the
        # increment sits after the step call), matching the
        # interpreter loop exactly.  ``cexec_disabled_at`` records the
        # *first* disabling CEXEC only (first-occurrence semantics,
        # identical guard to the interpreter below).
        try:
            for step in steps:
                if enabled:
                    enabled = step(tpp, ctx, report)
                    executed += 1
                    if not enabled and report.cexec_disabled_at is None:
                        report.cexec_disabled_at = index
                else:
                    report.skipped += 1
                index += 1
        except TCPUFault as fault:
            self._fault(tpp, report, fault)
        except IndexError as exc:
            self._fault(tpp, report, TCPUFault(
                FaultCode.MEMORY_BOUNDS, str(exc)))
        report.executed = executed
        self._advance_hop(tpp)
        report.cycles = pipeline_cycles(executed)
        self.tpps_executed += 1
        self.instructions_executed += executed
        return report

    def _run_interpreted(self, tpp: TPPSection, ctx: ExecutionContext,
                         report: ExecutionReport) -> ExecutionReport:
        """Reference interpreter loop (the ``compile=False`` path)."""
        enabled = True
        for index, instruction in enumerate(tpp.instructions):
            if not enabled:
                report.skipped += 1
                continue
            try:
                enabled = self._step(tpp, ctx, instruction, report)
                report.executed += 1
                if not enabled and report.cexec_disabled_at is None:
                    report.cexec_disabled_at = index
            except TCPUFault as fault:
                self._fault(tpp, report, fault)
                break
            except IndexError as exc:
                self._fault(tpp, report, TCPUFault(
                    FaultCode.MEMORY_BOUNDS, str(exc)))
                break

        self._advance_hop(tpp)

        report.cycles = pipeline_cycles(report.executed)
        self.tpps_executed += 1
        self.instructions_executed += report.executed
        return report

    def _compiled_entry(self, tpp: TPPSection) -> CompiledEntry:
        """Compiled closures for this program, from the cache when warm.

        An MMU layout change (re-bound reader) invalidates every compiled
        program wholesale: the closures hold the old accessors, so the
        cache is cleared and programs recompile on next execution.
        Certificates are swept by the same bump (:meth:`_sweep_stale`):
        their address facts were proven against the old bindings, so a
        recompiled entry runs fully checked until re-admission.
        """
        mmu = self.mmu
        self._sweep_stale()
        key = tpp._program_key
        if key is None:
            key = tpp.program_key
        if key == self._last_key:
            self.cache.hits += 1
            return self._last_entry
        entry = self.cache.get(key)
        if entry is None:
            steps = compile_program(tpp.instructions, tpp.mode,
                                    tpp.word_size, mmu)
            certificate = self._verified.get(key)
            if certificate is not None:
                verified_steps = compile_program(
                    tpp.instructions, tpp.mode, tpp.word_size, mmu,
                    certificate=certificate)
                entry = CompiledEntry(steps, verified_steps, certificate)
                entry.batch_plan = build_batch_plan(
                    tpp.instructions, tpp.mode, tpp.word_size, mmu,
                    certificate=certificate)
            else:
                entry = CompiledEntry(steps)
            self.cache.put(key, entry)
        self._last_key = key
        self._last_entry = entry
        return entry

    @staticmethod
    def _advance_hop(tpp: TPPSection) -> None:
        """Consume this switch's hop slot, *including* on a fault.

        §3.4: a faulting TPP is stamped and forwarded, so the faulting
        hop's packet-memory slot must be reserved — if the hop counter did
        not advance, the next switch would silently overwrite whatever
        partial evidence the fault left behind, and the collector could no
        longer tell which hop faulted.
        """
        if tpp.mode == AddressingMode.HOP:
            tpp.hop += 1

    def _fault(self, tpp: TPPSection, report: ExecutionReport,
               fault: TCPUFault) -> None:
        report.fault = fault.code
        tpp.record_fault(fault.code)
        self.faults += 1

    def _step(self, tpp: TPPSection, ctx: ExecutionContext,
              instruction: Instruction, report: ExecutionReport) -> bool:
        """Execute one instruction; returns False when CEXEC disables the
        rest of the program on this switch."""
        opcode = instruction.opcode
        word = tpp.word_size

        if opcode == Opcode.NOP:
            return True

        if opcode == Opcode.PUSH:
            value = self.mmu.read(instruction.addr, ctx)
            if tpp.sp + word > len(tpp.memory):
                raise TCPUFault(
                    FaultCode.STACK_OVERFLOW,
                    f"PUSH at SP={tpp.sp} past {len(tpp.memory)} bytes")
            tpp.write_word(tpp.sp, value)
            tpp.sp += word
            return True

        if opcode == Opcode.POP:
            if tpp.sp < word:
                raise TCPUFault(FaultCode.STACK_UNDERFLOW,
                                f"POP with SP={tpp.sp}")
            tpp.sp -= word
            value = tpp.read_word(tpp.sp)
            self._write_switch(instruction.addr, value, ctx, report)
            return True

        if opcode == Opcode.LOAD:
            value = self.mmu.read(instruction.addr, ctx)
            tpp.write_word(self._effective_address(tpp, instruction), value)
            return True

        if opcode == Opcode.STORE:
            value = tpp.read_word(self._effective_address(tpp, instruction))
            self._write_switch(instruction.addr, value, ctx, report)
            return True

        if opcode == Opcode.CSTORE:
            # CSTORE dst, cond, src — linearizable conditional store; the
            # old value of dst is written back over cond so the end-host
            # can tell whether its store won.
            cond_offset = instruction.offset * word
            src_offset = cond_offset + word
            cond = tpp.read_word(cond_offset)
            src = tpp.read_word(src_offset)
            old = self.mmu.read(instruction.addr, ctx)
            tpp.write_word(cond_offset, old)
            if old == cond:
                self._write_switch(instruction.addr, src, ctx, report)
            return True

        if opcode == Opcode.CEXEC:
            # CEXEC reg, mask, value: run the rest of the program only if
            # (reg & mask) == value.
            mask_offset = instruction.offset * word
            mask = tpp.read_word(mask_offset)
            expected = tpp.read_word(mask_offset + word)
            register = self.mmu.read(instruction.addr, ctx)
            return (register & mask) == expected

        if opcode in _ARITHMETIC:
            ea = self._effective_address(tpp, instruction)
            current = tpp.read_word(ea)
            operand = self.mmu.read(instruction.addr, ctx)
            tpp.write_word(ea, _ARITHMETIC[opcode](current, operand))
            return True

        raise TCPUFault(FaultCode.BAD_INSTRUCTION,
                        f"opcode {opcode!r} not implemented")

    def _write_switch(self, addr: int, value: int, ctx: ExecutionContext,
                      report: ExecutionReport) -> None:
        self.mmu.write(addr, value, ctx)
        report.switch_writes.append((addr, value))

    @staticmethod
    def _effective_address(tpp: TPPSection,
                           instruction: Instruction) -> int:
        """Byte address in packet memory for a hop-relative operand."""
        byte_offset = instruction.offset * tpp.word_size
        if (tpp.mode == AddressingMode.HOP
                and instruction.opcode in HOP_RELATIVE_OPCODES):
            return tpp.hop * tpp.perhop_len_bytes + byte_offset
        return byte_offset


_ARITHMETIC = {
    Opcode.ADD: lambda a, b: a + b,
    Opcode.SUB: lambda a, b: a - b,
    Opcode.AND: lambda a, b: a & b,
    Opcode.OR: lambda a, b: a | b,
    Opcode.XOR: lambda a, b: a ^ b,
    Opcode.MIN: min,
    Opcode.MAX: max,
}


def pipeline_cycles(n_instructions: int) -> int:
    """Cycles to run ``n`` instructions on the pipelined TCPU.

    Latency 4 cycles for the first instruction, then one instruction
    retires per cycle (§3.3).
    """
    if n_instructions <= 0:
        return 0
    return PIPELINE_LATENCY_CYCLES + (n_instructions - 1)


@dataclass(frozen=True)
class PipelineModel:
    """Analytical timing model reproducing the paper's §3.3 arithmetic."""

    clock_ghz: float = 1.0

    def cycles(self, n_instructions: int) -> int:
        """Pipelined cycle count for a program."""
        return pipeline_cycles(n_instructions)

    def execution_time_ns(self, n_instructions: int) -> float:
        """Wall time on the TCPU for a program."""
        return self.cycles(n_instructions) / self.clock_ghz

    @staticmethod
    def transmission_time_ns(packet_bytes: int, rate_gbps: float) -> float:
        """Serialization time of a packet at a line rate."""
        return packet_bytes * 8 / rate_gbps

    def fits_in_transmission_time(self, n_instructions: int,
                                  packet_bytes: int = 64,
                                  rate_gbps: float = 10.0) -> bool:
        """The paper's feasibility check: "execution takes less than a
        packet's transmission time" even for minimum-size packets."""
        return (self.execution_time_ns(n_instructions)
                <= self.transmission_time_ns(packet_bytes, rate_gbps))

    @staticmethod
    def line_rate_packets_per_second(n_ports: int = 64,
                                     rate_gbps: float = 10.0,
                                     packet_bytes: int = 64) -> float:
        """Aggregate packet rate a switch must sustain (§1 footnote 2:
        "a 64-port 10GbE switch has to process about a billion 64-byte
        packets/second").  Includes the 20 B inter-packet overhead
        (preamble + inter-frame gap) a real wire imposes."""
        wire_bytes = packet_bytes + 20
        per_port = rate_gbps * 1e9 / (wire_bytes * 8)
        return n_ports * per_port

    def cut_through_budget_cycles(self, latency_ns: float = 300.0) -> int:
        """Clock cycles inside a cut-through latency budget (§3.3: 300 ns
        at 1 GHz is 300 cycles)."""
        return math.floor(latency_ns * self.clock_ghz)
