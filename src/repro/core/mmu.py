"""Per-switch memory management: virtual addresses → live state.

The paper (§3.2.1): "These statistics reside in different memory banks, but
providing a unified address space makes them available to TPPs."  The MMU is
that translation layer.  Each switch owns one MMU:

- read-only statistics (Switch/PacketMetadata/Queue/Link namespaces) are
  *bound* by the switch at construction time as reader callables evaluated
  against the current :class:`ExecutionContext`;
- writable scratch (the global SRAM words and the per-port link scratch
  registers) is stored *inside* the MMU, with optional per-task protection
  domains configured by the control-plane agent (§3.2 "Multiple tasks").

All reads/writes raise :class:`~repro.core.exceptions.TCPUFault` on bad
addresses or permission violations; the TCPU converts those into fault codes
stamped on the packet.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional

from repro.core.exceptions import FaultCode, TCPUFault
from repro.core.memory_map import (
    LINK_SCRATCH_BASE,
    LINK_SCRATCH_SLOTS,
    SRAM_BASE,
    SRAM_WORDS,
    MemoryMap,
    is_link_scratch,
    is_sram,
    region_of,
)


@dataclass(slots=True)
class ExecutionContext:
    """Everything an instruction's operands can resolve against.

    Built by the switch pipeline just before handing a TPP to the TCPU —
    at that point the routing lookup has already chosen the egress port, so
    ``Queue:``/``Link:`` reads observe the queue the packet is *about to*
    join, exactly the semantics of Figure 1.
    """

    metadata: Any                 # repro.asic.metadata.PacketMetadata
    egress_port: Any              # repro.net.port.Port
    time_ns: int = 0
    task_id: int = 0

    @property
    def queue(self) -> Any:
        """The egress queue the packet will be stored in (selected by the
        classifier and recorded in the metadata's queue id)."""
        queue_id = getattr(self.metadata, "queue_id", 0)
        queue_for = getattr(self.egress_port, "queue_for", None)
        if queue_for is None:  # minimal port stand-ins in tests
            return self.egress_port.queue
        return queue_for(queue_id)

    @property
    def egress_port_index(self) -> int:
        """Index of the selected egress port on the switch."""
        return self.egress_port.index


Reader = Callable[[ExecutionContext], int]
Writer = Callable[[ExecutionContext, int], None]


@dataclass
class SRAMRegion:
    """One allocation handed out by the control-plane agent."""

    start_word: int
    n_words: int
    task_id: int

    def contains(self, word: int) -> bool:
        return self.start_word <= word < self.start_word + self.n_words


class _NumpySRAMWords:
    """Numpy-backed SRAM word store (opt-in, :meth:`MMU.use_numpy_sram`).

    Item access matches the default list store bit-for-bit for every
    value the TCPU can write (words are masked to their width, at most
    64 bits, before they reach the store); direct control-plane pokes
    are stored modulo 2**64, the array's word width.
    """

    __slots__ = ("_words",)

    def __init__(self, np: Any, n_words: int,
                 initial: Optional[List[int]] = None) -> None:
        self._words = np.zeros(n_words, dtype=np.uint64)
        if initial is not None:
            for index, value in enumerate(initial):
                self._words[index] = int(value) & 0xFFFF_FFFF_FFFF_FFFF

    def __len__(self) -> int:
        return len(self._words)

    def __getitem__(self, word: int) -> int:
        return int(self._words[word])

    def __setitem__(self, word: int, value: int) -> None:
        self._words[word] = int(value) & 0xFFFF_FFFF_FFFF_FFFF


class MMU:
    """One switch's unified address space."""

    def __init__(self, memory_map: Optional[MemoryMap] = None,
                 name: str = "") -> None:
        self.memory_map = memory_map if memory_map else MemoryMap.standard()
        self.name = name
        self._readers: Dict[int, Reader] = {}
        #: Virtual addresses whose bound reader is *batch-stable*:
        #: side-effect-free and unchanged by TPP executions within one
        #: ingress batch (see :mod:`repro.core.batch`).  Scratch regions
        #: (SRAM, link scratch) are implicitly stable — only a TPP write
        #: can move them, and the vectorized batch lane excludes write
        #: opcodes — so only bound statistics need explicit marking.
        self._batch_stable: set = set()
        #: Word store for the global scratch SRAM: a plain list by
        #: default, or (after :meth:`use_numpy_sram`) a numpy-backed
        #: array wrapper with identical item semantics.
        self._sram: Any = [0] * SRAM_WORDS
        self._sram_regions: List[SRAMRegion] = []
        self._link_scratch: Dict[int, List[int]] = {}
        self.enforce_sram_protection = False
        # Pre-resolved accessor tables (the fast path): virtual address ->
        # bound getter/setter, built at first touch so namespace + offset
        # resolution is hoisted out of the per-instruction path.
        self._reader_accessors: Dict[int, Reader] = {}
        self._writer_accessors: Dict[int, Writer] = {}
        #: Bumped whenever the address-space layout changes (a reader is
        #: re-bound); compiled programs bound against an older version are
        #: stale and must be recompiled.
        self.layout_version = 0
        #: Accessor closures built so far (resolution work actually done).
        self.accessor_resolutions = 0

    # ------------------------------------------------------------------ #
    # Binding read-only statistics
    # ------------------------------------------------------------------ #

    def bind_reader(self, name_or_vaddr, reader: Reader,
                    batch_stable: bool = False) -> None:
        """Expose a statistic at an address (or mnemonic) read-only.

        Binding (or re-binding) changes the address-space layout, so every
        pre-resolved accessor — and every compiled program holding one —
        is invalidated.

        ``batch_stable`` declares the reader safe for instruction-major
        batched execution: it has no side effects and its value cannot be
        changed by the TPP executions within one ingress batch (all of
        which happen at a single simulated instant).  Readers of
        execution-order-dependent counters (e.g. ``Switch:TPPsExecuted``)
        must stay unstable, which keeps their programs on the
        packet-at-a-time lane.
        """
        vaddr = self._to_vaddr(name_or_vaddr)
        self._readers[vaddr] = reader
        if batch_stable:
            self._batch_stable.add(vaddr)
        else:
            self._batch_stable.discard(vaddr)
        self.invalidate_accessors()

    def reader_is_batch_stable(self, vaddr: int) -> bool:
        """Whether reads of ``vaddr`` may be reordered across the packets
        of one batch.  Scratch regions are stable by construction (the
        vectorized lane admits no write opcodes); bound statistics are
        stable only when their binding said so; unmapped addresses are
        not (they fault, which the safe lane reproduces per packet)."""
        if is_sram(vaddr) or is_link_scratch(vaddr):
            return True
        return vaddr in self._batch_stable

    def writer_is_batch_stable(self, vaddr: int) -> bool:
        """Whether writes to ``vaddr`` may be reordered instruction-major
        across the packets of one batch and committed once at the end.

        Mirrors :meth:`reader_is_batch_stable` for the write-capable
        vector lanes: scratch SRAM qualifies — a word write is a pure
        state mutation whose sequential effect the kernel reproduces
        exactly (prefix-scan, first-match claim or last-writer-wins per
        the certificate's dataflow class).  Link scratch does not: the
        target register depends on each packet's egress port, so the
        column-commit model has no single word to reason about.  Bound
        statistics and unmapped addresses fault on write either way and
        stay safe-lane.
        """
        return is_sram(vaddr)

    def _to_vaddr(self, name_or_vaddr) -> int:
        if isinstance(name_or_vaddr, str):
            return self.memory_map.resolve(name_or_vaddr)
        return int(name_or_vaddr)

    # ------------------------------------------------------------------ #
    # Pre-resolved accessors (the compiled fast path)
    # ------------------------------------------------------------------ #

    def invalidate_accessors(self) -> None:
        """Drop every pre-resolved accessor after a layout change.

        Bumps :attr:`layout_version` so TCPUs holding compiled programs
        (whose closures bound the old accessors) recompile as well.
        """
        self._reader_accessors.clear()
        self._writer_accessors.clear()
        self.layout_version += 1

    def reader_for(self, vaddr: int) -> Reader:
        """A bound getter for ``vaddr``, resolved once and cached.

        Resolution never raises: an unmapped address yields an accessor
        that raises :class:`TCPUFault` *when called*, preserving the
        interpreter's read-time fault semantics (an instruction behind a
        disabling CEXEC must not fault at compile time).
        """
        accessor = self._reader_accessors.get(vaddr)
        if accessor is None:
            accessor = self._build_reader(vaddr)
            self._reader_accessors[vaddr] = accessor
            self.accessor_resolutions += 1
        return accessor

    def writer_for(self, vaddr: int) -> Writer:
        """A bound setter for ``vaddr``, resolved once and cached.

        Read-only and unmapped addresses yield accessors that raise the
        interpreter's exact fault codes when called.
        """
        accessor = self._writer_accessors.get(vaddr)
        if accessor is None:
            accessor = self._build_writer(vaddr)
            self._writer_accessors[vaddr] = accessor
            self.accessor_resolutions += 1
        return accessor

    def _build_reader(self, vaddr: int) -> Reader:
        if is_sram(vaddr):
            word = vaddr - SRAM_BASE
            sram = self._sram

            def read_sram(ctx: ExecutionContext) -> int:
                if self.enforce_sram_protection:
                    self._check_sram_access(word, ctx.task_id)
                return sram[word]

            return read_sram
        if is_link_scratch(vaddr):
            slot = vaddr - LINK_SCRATCH_BASE

            def read_scratch(ctx: ExecutionContext) -> int:
                return self._port_scratch(ctx.egress_port.index)[slot]

            return read_scratch
        reader = self._readers.get(vaddr)
        if reader is None:
            message = (f"{self.name}: no statistic at {vaddr:#06x} "
                       f"({region_of(vaddr)} region)")

            def read_unmapped(ctx: ExecutionContext) -> int:
                raise TCPUFault(FaultCode.BAD_ADDRESS, message)

            return read_unmapped

        def read_stat(ctx: ExecutionContext) -> int:
            return int(reader(ctx))

        return read_stat

    def _build_writer(self, vaddr: int) -> Writer:
        if is_sram(vaddr):
            word = vaddr - SRAM_BASE
            sram = self._sram

            def write_sram(ctx: ExecutionContext, value: int) -> None:
                if self.enforce_sram_protection:
                    self._check_sram_access(word, ctx.task_id)
                sram[word] = int(value)

            return write_sram
        if is_link_scratch(vaddr):
            slot = vaddr - LINK_SCRATCH_BASE

            def write_scratch(ctx: ExecutionContext, value: int) -> None:
                self._port_scratch(ctx.egress_port.index)[slot] = int(value)

            return write_scratch
        if vaddr in self._readers:
            protected = (f"{self.name}: {self.memory_map.name_of(vaddr)} "
                         f"is read-only")

            def write_protected(ctx: ExecutionContext, value: int) -> None:
                raise TCPUFault(FaultCode.WRITE_PROTECTED, protected)

            return write_protected
        unmapped = (f"{self.name}: no memory at {vaddr:#06x} "
                    f"({region_of(vaddr)} region)")

        def write_unmapped(ctx: ExecutionContext, value: int) -> None:
            raise TCPUFault(FaultCode.BAD_ADDRESS, unmapped)

        return write_unmapped

    # ------------------------------------------------------------------ #
    # SRAM allocation (driven by the control-plane agent)
    # ------------------------------------------------------------------ #

    def use_numpy_sram(self) -> bool:
        """Swap the SRAM word store for a numpy-backed array.

        The batch engine's word-array mode for scratch SRAM: contents
        are preserved, item semantics are unchanged for everything a TPP
        can write (see :class:`_NumpySRAMWords`).  Returns ``False`` —
        and changes nothing — when numpy is not importable, so callers
        can opt in unconditionally and keep the pure-python store as the
        fallback.  Accessor closures captured the old store, so the
        swap re-resolves them (a layout bump, like ``bind_reader``).
        """
        if isinstance(self._sram, _NumpySRAMWords):
            return True
        if os.environ.get("REPRO_TPP_NUMPY", "1") == "0":
            # The numpy-absent CI lane: behave exactly as if the import
            # below had failed, so the pure-python store is what the
            # differential suite exercises.
            return False
        try:
            import numpy
        except ImportError:  # pragma: no cover - numpy present in CI
            return False
        self._sram = _NumpySRAMWords(numpy, SRAM_WORDS, self._sram)
        self.invalidate_accessors()
        return True

    def allocate_sram(self, start_word: int, n_words: int,
                      task_id: int) -> SRAMRegion:
        """Mark ``[start, start+n)`` as owned by ``task_id``."""
        if start_word < 0 or start_word + n_words > SRAM_WORDS:
            raise TCPUFault(FaultCode.BAD_ADDRESS,
                            f"SRAM allocation [{start_word}, "
                            f"{start_word + n_words}) out of range")
        for region in self._sram_regions:
            overlap = (start_word < region.start_word + region.n_words
                       and region.start_word < start_word + n_words)
            if overlap:
                raise TCPUFault(
                    FaultCode.SRAM_PROTECTION,
                    f"allocation overlaps task {region.task_id}'s region")
        region = SRAMRegion(start_word, n_words, task_id)
        self._sram_regions.append(region)
        return region

    def release_sram(self, task_id: int) -> None:
        """Free every region owned by ``task_id`` (contents are zeroed)."""
        survivors = []
        for region in self._sram_regions:
            if region.task_id == task_id:
                for word in range(region.start_word,
                                  region.start_word + region.n_words):
                    self._sram[word] = 0
            else:
                survivors.append(region)
        self._sram_regions = survivors

    def sram_owner(self, word: int) -> Optional[int]:
        """Task owning an SRAM word, or ``None`` if unallocated."""
        for region in self._sram_regions:
            if region.contains(word):
                return region.task_id
        return None

    def sram_image(self) -> bytes:
        """The full SRAM contents as canonical bytes.

        One big-endian 64-bit word per SRAM slot, independent of the
        backing store (plain list or numpy).  This is the determinism
        fingerprint the sharded fleet driver hashes: two runs whose
        switches end with identical images performed identical SRAM
        write sequences, whatever the shard layout was.
        """
        sram = self._sram
        return b"".join(
            (int(sram[word]) & 0xFFFF_FFFF_FFFF_FFFF).to_bytes(8, "big")
            for word in range(SRAM_WORDS))

    def _check_sram_access(self, word: int, task_id: int) -> None:
        if not self.enforce_sram_protection:
            return
        owner = self.sram_owner(word)
        if owner is not None and owner != task_id:
            raise TCPUFault(
                FaultCode.SRAM_PROTECTION,
                f"SRAM word {word} belongs to task {owner}, "
                f"accessed by task {task_id}")

    # ------------------------------------------------------------------ #
    # Reads and writes
    # ------------------------------------------------------------------ #

    def read(self, vaddr: int, ctx: ExecutionContext) -> int:
        """Read a virtual address in the given execution context."""
        if is_sram(vaddr):
            word = vaddr - SRAM_BASE
            self._check_sram_access(word, ctx.task_id)
            return self._sram[word]
        if is_link_scratch(vaddr):
            slot = vaddr - LINK_SCRATCH_BASE
            return self._port_scratch(ctx.egress_port_index)[slot]
        reader = self._readers.get(vaddr)
        if reader is None:
            raise TCPUFault(
                FaultCode.BAD_ADDRESS,
                f"{self.name}: no statistic at {vaddr:#06x} "
                f"({region_of(vaddr)} region)")
        return int(reader(ctx))

    def write(self, vaddr: int, value: int, ctx: ExecutionContext) -> None:
        """Write a virtual address; only scratch regions are writable."""
        if is_sram(vaddr):
            word = vaddr - SRAM_BASE
            self._check_sram_access(word, ctx.task_id)
            self._sram[word] = int(value)
            return
        if is_link_scratch(vaddr):
            slot = vaddr - LINK_SCRATCH_BASE
            self._port_scratch(ctx.egress_port_index)[slot] = int(value)
            return
        if vaddr in self._readers:
            raise TCPUFault(
                FaultCode.WRITE_PROTECTED,
                f"{self.name}: {self.memory_map.name_of(vaddr)} is "
                f"read-only")
        raise TCPUFault(
            FaultCode.BAD_ADDRESS,
            f"{self.name}: no memory at {vaddr:#06x} "
            f"({region_of(vaddr)} region)")

    # ------------------------------------------------------------------ #
    # Direct (control-plane) access helpers
    # ------------------------------------------------------------------ #

    def peek_sram(self, word: int) -> int:
        """Control-plane read of an SRAM word (no protection checks)."""
        return self._sram[word]

    def poke_sram(self, word: int, value: int) -> None:
        """Control-plane write of an SRAM word (no protection checks)."""
        self._sram[word] = int(value)

    def peek_link_scratch(self, port_index: int, slot: int) -> int:
        """Control-plane read of a per-port scratch register."""
        return self._port_scratch(port_index)[slot]

    def poke_link_scratch(self, port_index: int, slot: int,
                          value: int) -> None:
        """Control-plane write of a per-port scratch register."""
        self._port_scratch(port_index)[slot] = int(value)

    def _port_scratch(self, port_index: int) -> List[int]:
        if port_index not in self._link_scratch:
            self._link_scratch[port_index] = [0] * LINK_SCRATCH_SLOTS
        return self._link_scratch[port_index]
