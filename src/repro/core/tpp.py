"""The tiny-packet-program section of a packet (paper Figure 4).

Layout on the wire, directly after the Ethernet header::

    +------------------------------+
    | TPP header (12 bytes)        |  lengths, addressing mode, hop/SP,
    |                              |  per-hop size, flags, task, seq
    +------------------------------+
    | instructions (4 bytes each)  |
    +------------------------------+
    | packet memory                |  pre-allocated by the end-host;
    |                              |  "never grows/shrinks inside the
    |                              |   network"
    +------------------------------+
    | encapsulated payload         |  e.g. a TCP/IP packet (optional)
    +------------------------------+

All lengths are 4-byte aligned "for efficient encoding" (Figure 4).  The
header carries exactly the five fields the figure names, plus a flags byte
(fault reporting and the done-bit set by the receiver before echoing a TPP
back to its sender), a task id (for SRAM protection domains) and a sequence
number (so an end-host can match responses to probes).
"""

from __future__ import annotations

import enum
import struct
from dataclasses import dataclass, field
from typing import Any, List

from repro.core.exceptions import FaultCode, TPPEncodingError
from repro.core.isa import (
    INSTRUCTION_BYTES,
    Instruction,
    decode_program,
    encode_program,
)

TPP_HEADER_BYTES = 12
_HEADER_STRUCT = struct.Struct("!HHBBHBBBB")

#: Execution on this switch (and all later ones) is finished; set by the
#: receiving end-host before echoing the TPP back so the reverse path does
#: not execute it again.
FLAG_DONE = 0x01
#: A fault occurred at some hop; the fault code is in the high nibble.
FLAG_FAULT = 0x02

_FAULT_SHIFT = 4

SUPPORTED_WORD_SIZES = (4, 8)


def program_key_of(instructions: List[Instruction], mode: "AddressingMode",
                   word_size: int) -> bytes:
    """Canonical program fingerprint: instruction wire bytes plus the
    addressing mode and word size — everything that affects how the
    program compiles and verifies, nothing that changes per hop.

    Shared by :attr:`TPPSection.program_key` (the fast-path cache key)
    and the static verifier's certificates
    (:class:`repro.core.verifier.VerifiedProgram`), so a certificate
    issued for an assembled program matches the in-flight sections built
    from it.
    """
    return encode_program(instructions) + bytes((int(mode), word_size))


class AddressingMode(enum.IntEnum):
    """How instructions address packet memory (§3.2.2)."""

    STACK = 0     #: PUSH/POP through the stack pointer.
    HOP = 1       #: base:offset — ``hop * perhop_len + offset`` words.
    ABSOLUTE = 2  #: offsets are absolute words into packet memory.


@dataclass(slots=True)
class TPPSection:
    """A TPP carried inside a packet, with live (mutable) packet memory."""

    instructions: List[Instruction]
    memory: bytearray
    mode: AddressingMode = AddressingMode.STACK
    word_size: int = 4
    hop_or_sp: int = 0
    perhop_len_bytes: int = 0
    flags: int = 0
    task_id: int = 0
    seq: int = 0
    payload: Any = None
    _length_cache: Any = field(default=None, init=False, repr=False,
                               compare=False)
    #: Memoized program fingerprint (see :attr:`program_key`).
    _program_key: Any = field(default=None, init=False, repr=False,
                              compare=False)
    #: Memoized wire bytes of the whole section (see :meth:`encode`);
    #: dropped (set to ``None``) by every mutator, so serialization only
    #: happens when a hop actually wrote the packet.
    _wire_cache: Any = field(default=None, init=False, repr=False,
                             compare=False)

    def __post_init__(self) -> None:
        if self.word_size not in SUPPORTED_WORD_SIZES:
            raise TPPEncodingError(
                f"word size must be one of {SUPPORTED_WORD_SIZES}, "
                f"got {self.word_size}")
        if len(self.memory) % 4:
            raise TPPEncodingError(
                f"packet memory must be 4-byte aligned, "
                f"got {len(self.memory)} bytes")
        if self.perhop_len_bytes % 4:
            raise TPPEncodingError(
                f"per-hop length must be 4-byte aligned, "
                f"got {self.perhop_len_bytes}")

    # ------------------------------------------------------------------ #
    # Sizes
    # ------------------------------------------------------------------ #

    @property
    def tpp_length_bytes(self) -> int:
        """Header + instructions + packet memory (Figure 4 field 1).

        Cached on first use: the TPP section "never grows/shrinks inside
        the network" (module docs), so the instruction count and packet
        memory *length* are fixed for the life of the section even though
        the memory contents mutate at every hop.  The encapsulated payload
        is deliberately not part of this cache — :attr:`size_bytes` reads
        it fresh so post-construction payload swaps (wire decode, trimmed
        echoes) stay correct.
        """
        length = self._length_cache
        if length is None:
            length = (TPP_HEADER_BYTES
                      + len(self.instructions) * INSTRUCTION_BYTES
                      + len(self.memory))
            self._length_cache = length
        return length

    def invalidate_length_cache(self) -> None:
        """Force recomputation after something *resized* packet memory.

        Only fault injection does this — a well-formed TPP's memory length
        is immutable in the network — but the corruption injector models a
        mangled length field by truncating ``memory``, and readers of the
        damaged section must see its real (shorter) size.
        """
        self._length_cache = None
        self._wire_cache = None

    # ------------------------------------------------------------------ #
    # Fast-path caches
    # ------------------------------------------------------------------ #

    @property
    def program_key(self) -> bytes:
        """Fingerprint of the *program*: instruction wire bytes plus the
        addressing mode and word size (everything that affects how the
        instructions compile, nothing that changes per hop).

        This is the key of the TCPU's compile-once program cache
        (:mod:`repro.core.fastpath`).  Memoized because the instruction
        block never changes inside the network; anything that damages it
        (the link corruption injector) must call
        :meth:`invalidate_caches`.
        """
        key = self._program_key
        if key is None:
            key = program_key_of(self.instructions, self.mode,
                                 self.word_size)
            self._program_key = key
        return key

    def invalidate_caches(self) -> None:
        """Drop every memoized view of this section.

        The corruption injector calls this after mutating the section in
        place (truncated/bit-flipped memory, scrambled header fields), so
        the program key, wire bytes, and length are all recomputed from
        the damaged state.
        """
        self._program_key = None
        self._wire_cache = None
        self._length_cache = None

    @property
    def size_bytes(self) -> int:
        """Wire size including the encapsulated payload."""
        from repro.net.packet import payload_size  # avoid import cycle
        return self.tpp_length_bytes + payload_size(self.payload)

    # ------------------------------------------------------------------ #
    # Stack pointer / hop counter views
    # ------------------------------------------------------------------ #

    @property
    def sp(self) -> int:
        """Stack pointer in bytes (stack-addressed programs)."""
        return self.hop_or_sp

    @sp.setter
    def sp(self, value: int) -> None:
        self.hop_or_sp = value
        self._wire_cache = None

    @property
    def hop(self) -> int:
        """Hop counter (hop-addressed programs); incremented per switch."""
        return self.hop_or_sp

    @hop.setter
    def hop(self, value: int) -> None:
        self.hop_or_sp = value
        self._wire_cache = None

    def hops_executed(self) -> int:
        """How many switches have executed this TPP so far.

        Works for both addressing modes: the hop counter directly in hop
        mode, SP divided by the per-hop footprint in stack mode (requires a
        program that pushes a fixed number of words per hop, which every
        program built by the assembler records in ``perhop_len_bytes``).
        """
        if self.mode == AddressingMode.HOP:
            return self.hop_or_sp
        if self.perhop_len_bytes:
            return self.hop_or_sp // self.perhop_len_bytes
        return 0

    # ------------------------------------------------------------------ #
    # Flags
    # ------------------------------------------------------------------ #

    @property
    def done(self) -> bool:
        """Whether the done-bit is set (skip execution everywhere)."""
        return bool(self.flags & FLAG_DONE)

    def mark_done(self) -> None:
        """Set the done-bit; switches will forward without executing."""
        self.flags |= FLAG_DONE
        self._wire_cache = None

    @property
    def fault(self) -> FaultCode:
        """The recorded fault, or :attr:`FaultCode.NONE`."""
        if not self.flags & FLAG_FAULT:
            return FaultCode.NONE
        return FaultCode(self.flags >> _FAULT_SHIFT)

    def record_fault(self, code: FaultCode) -> None:
        """Stamp a fault code into the flags (first fault wins)."""
        if self.flags & FLAG_FAULT:
            return
        self.flags |= FLAG_FAULT | (int(code) << _FAULT_SHIFT)
        self._wire_cache = None

    # ------------------------------------------------------------------ #
    # Packet memory access (word granularity)
    # ------------------------------------------------------------------ #

    def read_word(self, byte_offset: int) -> int:
        """Read one word (``word_size`` bytes, big-endian, unsigned)."""
        self._check_bounds(byte_offset)
        end = byte_offset + self.word_size
        return int.from_bytes(self.memory[byte_offset:end], "big")

    def write_word(self, byte_offset: int, value: int) -> None:
        """Write one word, truncated to the word width."""
        self._check_bounds(byte_offset)
        end = byte_offset + self.word_size
        mask = (1 << (8 * self.word_size)) - 1
        self.memory[byte_offset:end] = (value & mask).to_bytes(
            self.word_size, "big")
        self._wire_cache = None

    def words(self) -> List[int]:
        """All of packet memory as a list of words.

        Only complete words are returned: a (hostile) packet may declare
        an 8-byte word size over memory that is not a multiple of 8, and
        observers of such packets must not crash on the ragged tail.
        """
        usable = len(self.memory) - len(self.memory) % self.word_size
        return [self.read_word(i)
                for i in range(0, usable, self.word_size)]

    def _check_bounds(self, byte_offset: int) -> None:
        if byte_offset < 0 or byte_offset + self.word_size > len(self.memory):
            raise IndexError(
                f"word access at byte {byte_offset} outside packet memory "
                f"of {len(self.memory)} bytes")

    # ------------------------------------------------------------------ #
    # Wire format
    # ------------------------------------------------------------------ #

    def encode(self) -> bytes:
        """Serialize header + instructions + packet memory.

        The encapsulated payload is a simulation object and is not
        serialized (its size is accounted separately).

        The result is memoized with dirty-tracking: every mutator
        (word writes, SP/hop updates, flag changes) drops the cached
        bytes, so repeated serialization of a section no hop has touched
        since is free.  Direct mutation of :attr:`memory` bypasses the
        tracking and must be followed by :meth:`invalidate_caches` (the
        link corruption injector does this).
        """
        cached = self._wire_cache
        if cached is not None:
            return cached
        header = _HEADER_STRUCT.pack(
            self.tpp_length_bytes,
            len(self.memory),
            int(self.mode),
            self.word_size,
            self.hop_or_sp,
            self.perhop_len_bytes,
            self.flags,
            self.task_id,
            self.seq,
        )
        encoded = (header + encode_program(self.instructions)
                   + bytes(self.memory))
        self._wire_cache = encoded
        return encoded

    @classmethod
    def decode(cls, raw: bytes, payload: Any = None) -> "TPPSection":
        """Parse bytes produced by :meth:`encode`."""
        if len(raw) < TPP_HEADER_BYTES:
            raise TPPEncodingError(
                f"TPP too short: {len(raw)} < {TPP_HEADER_BYTES}")
        (tpp_len, mem_len, mode_value, word_size, hop_or_sp,
         perhop_len, flags, task_id, seq) = _HEADER_STRUCT.unpack(
            raw[:TPP_HEADER_BYTES])
        if tpp_len != len(raw):
            raise TPPEncodingError(
                f"TPP length field {tpp_len} != buffer length {len(raw)}")
        instruction_bytes = tpp_len - TPP_HEADER_BYTES - mem_len
        if instruction_bytes < 0 or instruction_bytes % INSTRUCTION_BYTES:
            raise TPPEncodingError(
                f"inconsistent lengths: tpp={tpp_len} memory={mem_len}")
        try:
            mode = AddressingMode(mode_value)
        except ValueError as exc:
            raise TPPEncodingError(
                f"unknown addressing mode {mode_value}") from exc
        instructions_end = TPP_HEADER_BYTES + instruction_bytes
        instructions = decode_program(raw[TPP_HEADER_BYTES:instructions_end])
        memory = bytearray(raw[instructions_end:])
        return cls(instructions=instructions, memory=memory, mode=mode,
                   word_size=word_size, hop_or_sp=hop_or_sp,
                   perhop_len_bytes=perhop_len, flags=flags,
                   task_id=task_id, seq=seq, payload=payload)

    def copy(self) -> "TPPSection":
        """Deep copy (fresh packet memory); the payload is shared."""
        return TPPSection(
            instructions=list(self.instructions),
            memory=bytearray(self.memory),
            mode=self.mode,
            word_size=self.word_size,
            hop_or_sp=self.hop_or_sp,
            perhop_len_bytes=self.perhop_len_bytes,
            flags=self.flags,
            task_id=self.task_id,
            seq=self.seq,
            payload=self.payload,
        )
