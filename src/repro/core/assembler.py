"""Assembler for the paper's x86-like TPP assembly language.

Source syntax (everything case-insensitive except ``$symbols``)::

    ; --- directives -----------------------------------------------------
    .mode stack            ; stack | hop | absolute   (default: stack)
    .word 4                ; word size in bytes: 4 or 8 (default: 4)
    .hops 7                ; hops to preallocate memory for (default: 8)
    .memory 16             ; override: packet memory words (before pool)
    .perhop 3              ; override: words per hop (hop mode)
    .data 2 0x1234         ; initialize packet-memory word 2

    ; --- instructions (operand order follows the paper's listings) ------
    PUSH [Queue:QueueSize]                     ; switch -> packet[SP]
    POP  [Sram:Word3]                          ; packet[--SP] -> switch
    LOAD [Switch:SwitchID], [Packet:Hop[1]]    ; switch -> packet memory
    STORE [Link:RCP-RateRegister], [Packet:0]  ; packet memory -> switch
    CSTORE [Sram:Word0], [Packet:0], [Packet:1]
    CEXEC [Switch:SwitchID], 0xFFFFFFFF, $BottleneckSwitchID
    ADD [Packet:2], [Queue:QueueSize]          ; packet[2] += queue size
    MIN [Packet:0], [Link:Reg0]                ; packet[0] = min(., reg)

Operand kinds:

- ``[Namespace:Statistic]`` — a switch virtual address resolved against the
  network-wide :class:`~repro.core.memory_map.MemoryMap` at compile time
  (exactly the paper's "[Queue:QueueSize] will be compiled to a virtual
  memory address (say) 0xb000").  A raw ``[0xB000]`` is also accepted.
- ``[Packet:N]`` / ``[Packet:Hop[N]]`` — packet-memory word offset ``N``
  (both spellings encode identically; the TPP header's addressing mode
  decides whether it is hop-relative at run time).
- immediates — ``0x1F``, ``42``, or ``$name`` resolved from the ``symbols``
  mapping.  Immediates are materialized into a *literal pool* at the end of
  packet memory ("packet memory can contain initialized values to load data
  into the ASIC", Figure 4), because instructions themselves have no room
  for 32-bit constants in their 4-byte encoding.

Memory sizing: in stack mode the assembler computes the per-hop footprint
(one word per PUSH) and preallocates ``hops`` hops' worth, matching §2.1:
"the end-host preallocates enough packet memory to store queue sizes".
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.core.exceptions import AssemblerError
from repro.core.isa import Instruction, Opcode, PAIR_OPERAND_OPCODES
from repro.core.memory_map import MemoryMap
from repro.core.tpp import AddressingMode, TPPSection

DEFAULT_HOPS = 8

_PACKET_OPERAND = re.compile(
    r"^\[\s*packet\s*:\s*(?:hop\s*\[\s*(\d+)\s*\]|(\d+))\s*\]$",
    re.IGNORECASE)
_SWITCH_OPERAND = re.compile(r"^\[\s*([^\[\]]+?)\s*\]$")
_SYMBOL = re.compile(r"^\$([A-Za-z_][\w\-]*)$")

_MODES = {
    "stack": AddressingMode.STACK,
    "hop": AddressingMode.HOP,
    "absolute": AddressingMode.ABSOLUTE,
}


@dataclass(frozen=True)
class _Operand:
    """A parsed operand before encoding."""

    kind: str            # "switch" | "packet" | "immediate"
    value: int           # vaddr | word offset | literal value


@dataclass
class AssembledProgram:
    """Output of :func:`assemble`; a reusable template for TPP sections."""

    instructions: List[Instruction]
    initial_memory: bytes
    mode: AddressingMode
    word_size: int
    perhop_len_bytes: int
    memory_words: int
    pool_base_word: int
    source: str = ""
    symbols: Dict[str, int] = field(default_factory=dict)
    #: Hop budget the memory was sized for (the ``.hops`` directive or
    #: the ``hops=`` argument); the verifier's default admission horizon.
    hops: int = 0
    #: Source line of each instruction, for verifier diagnostics.
    lines: List[int] = field(default_factory=list)
    #: Program fingerprint stamped onto every built section so the TCPU's
    #: compile-once cache never re-encodes the instruction block per
    #: probe.  Computed lazily; instructions are fixed after assembly.
    _program_key: Any = field(default=None, repr=False, compare=False)
    #: Memoized default-argument :meth:`verify` result.
    _verification: Any = field(default=None, repr=False, compare=False)

    @property
    def n_instructions(self) -> int:
        return len(self.instructions)

    @property
    def instruction_bytes(self) -> int:
        """Wire bytes of the instruction block (paper: 4 B/instruction)."""
        return 4 * len(self.instructions)

    @property
    def memory_bytes(self) -> int:
        """Wire bytes of packet memory, literal pool included."""
        return len(self.initial_memory)

    def build(self, payload=None, task_id: int = 0,
              seq: int = 0) -> TPPSection:
        """Instantiate a fresh TPP section (new packet-memory copy)."""
        section = TPPSection(
            instructions=list(self.instructions),
            memory=bytearray(self.initial_memory),
            mode=self.mode,
            word_size=self.word_size,
            hop_or_sp=0,
            perhop_len_bytes=self.perhop_len_bytes,
            task_id=task_id,
            seq=seq,
            payload=payload,
        )
        key = self._program_key
        if key is None:
            self._program_key = section.program_key
        else:
            section._program_key = key
        return section

    def verify(self, memory_map: Optional[MemoryMap] = None,
               **kwargs: Any) -> Any:
        """Statically verify this program (see :mod:`repro.core.verifier`).

        The hop budget defaults to what the program was assembled for.
        The default-argument result is memoized — instructions and
        initial memory are fixed after assembly, so the analysis cannot
        change.  Returns a
        :class:`~repro.core.verifier.VerificationResult`.
        """
        # Local import: the assembler is imported by the verifier's
        # callers everywhere; keeping the verifier import lazy avoids an
        # import cycle and keeps plain assembly import-light.
        from repro.core.verifier import verify_program

        if memory_map is None and not kwargs:
            if self._verification is None:
                self._verification = verify_program(self)
            return self._verification
        return verify_program(self, memory_map=memory_map, **kwargs)


def assemble(source: str, memory_map: Optional[MemoryMap] = None,
             symbols: Optional[Dict[str, int]] = None,
             hops: int = DEFAULT_HOPS,
             verify: bool = False) -> AssembledProgram:
    """Compile TPP assembly into an :class:`AssembledProgram`.

    With ``verify=True`` the program is additionally run through the
    static verifier (:mod:`repro.core.verifier`) against the same memory
    map and hop budget it was assembled for;
    :class:`~repro.core.verifier.VerificationError` is raised if any
    error-severity diagnostic is found.  The (clean) result — including
    its fast-path certificate — is memoized on the program and returned
    by :meth:`AssembledProgram.verify`.
    """
    program = _Assembler(memory_map, symbols, hops).assemble(source)
    if verify:
        result = program.verify(memory_map=memory_map)
        result.raise_on_error()
        if memory_map is not None:
            program._verification = result
    return program


class _Assembler:
    """Single-use assembler state machine."""

    def __init__(self, memory_map: Optional[MemoryMap],
                 symbols: Optional[Dict[str, int]], hops: int) -> None:
        self.memory_map = memory_map if memory_map else MemoryMap.standard()
        self.symbols = {k.lower(): v for k, v in (symbols or {}).items()}
        self.hops = hops
        self.mode = AddressingMode.STACK
        self.word_size = 4
        self.memory_words: Optional[int] = None
        self.perhop_words: Optional[int] = None
        self.data_directives: List[Tuple[int, int]] = []
        self.parsed: List[Tuple[Opcode, List[_Operand], int, str]] = []
        self.used_symbols: Dict[str, int] = {}

    # ------------------------------------------------------------------ #
    # Entry point
    # ------------------------------------------------------------------ #

    def assemble(self, source: str) -> AssembledProgram:
        for number, raw_line in enumerate(source.splitlines(), start=1):
            line = raw_line.split(";")[0].split("#")[0].strip()
            if not line:
                continue
            if line.startswith("."):
                self._directive(line, number, raw_line)
            else:
                self._instruction(line, number, raw_line)
        return self._emit(source)

    # ------------------------------------------------------------------ #
    # Parsing
    # ------------------------------------------------------------------ #

    def _directive(self, line: str, number: int, raw: str) -> None:
        parts = line.split()
        name = parts[0].lower()
        try:
            if name == ".mode":
                self.mode = _MODES[parts[1].lower()]
            elif name == ".word":
                self.word_size = int(parts[1])
                if self.word_size not in (4, 8):
                    raise AssemblerError("word size must be 4 or 8",
                                         number, raw)
            elif name == ".hops":
                self.hops = self._int(parts[1], number, raw)
            elif name == ".memory":
                self.memory_words = self._int(parts[1], number, raw)
            elif name == ".perhop":
                self.perhop_words = self._int(parts[1], number, raw)
            elif name == ".data":
                index = self._int(parts[1], number, raw)
                value = self._int(parts[2], number, raw)
                self.data_directives.append((index, value))
            else:
                raise AssemblerError(f"unknown directive {name!r}",
                                     number, raw)
        except (IndexError, KeyError, ValueError) as exc:
            raise AssemblerError(f"malformed directive: {exc}",
                                 number, raw) from exc

    def _instruction(self, line: str, number: int, raw: str) -> None:
        mnemonic, _, rest = line.partition(" ")
        try:
            opcode = Opcode[mnemonic.upper()]
        except KeyError as exc:
            raise AssemblerError(f"unknown mnemonic {mnemonic!r}",
                                 number, raw) from exc
        operands = [self._operand(text.strip(), number, raw)
                    for text in _split_operands(rest)]
        self._check_arity(opcode, operands, number, raw)
        self.parsed.append((opcode, operands, number, raw))

    @staticmethod
    def _check_arity(opcode: Opcode, operands: List[_Operand],
                     number: int, raw: str) -> None:
        expected = {
            Opcode.NOP: (0,),
            Opcode.PUSH: (1,),
            Opcode.POP: (1,),
            Opcode.LOAD: (2,),
            Opcode.STORE: (2,),
            Opcode.CSTORE: (3,),
            Opcode.CEXEC: (3,),
        }.get(opcode, (2,))
        if len(operands) not in expected:
            raise AssemblerError(
                f"{opcode.name} takes {expected[0]} operand(s), "
                f"got {len(operands)}", number, raw)

    def _operand(self, text: str, number: int, raw: str) -> _Operand:
        if not text:
            raise AssemblerError("empty operand", number, raw)
        match = _PACKET_OPERAND.match(text)
        if match:
            offset = int(match.group(1) or match.group(2))
            if offset > 0xFF:
                raise AssemblerError(
                    f"packet offset {offset} exceeds 255", number, raw)
            return _Operand("packet", offset)
        symbol = _SYMBOL.match(text)
        if symbol:
            key = symbol.group(1).lower()
            if key not in self.symbols:
                raise AssemblerError(f"undefined symbol ${symbol.group(1)}",
                                     number, raw)
            value = self.symbols[key]
            self.used_symbols[symbol.group(1)] = value
            return _Operand("immediate", value)
        bracketed = _SWITCH_OPERAND.match(text)
        if bracketed:
            inner = bracketed.group(1)
            try:
                if inner.lower().startswith("0x"):
                    return _Operand("switch", int(inner, 16))
                return _Operand("switch", self.memory_map.resolve(inner))
            except KeyError as exc:
                raise AssemblerError(str(exc), number, raw) from exc
        try:
            return _Operand("immediate", self._int(text, number, raw))
        except AssemblerError:
            raise AssemblerError(f"cannot parse operand {text!r}",
                                 number, raw)

    def _int(self, text: str, number: int, raw: str) -> int:
        symbol = _SYMBOL.match(text)
        if symbol:
            key = symbol.group(1).lower()
            if key not in self.symbols:
                raise AssemblerError(f"undefined symbol ${symbol.group(1)}",
                                     number, raw)
            self.used_symbols[symbol.group(1)] = self.symbols[key]
            return self.symbols[key]
        try:
            return int(text, 0)
        except ValueError as exc:
            raise AssemblerError(f"bad integer {text!r}", number, raw) from exc

    # ------------------------------------------------------------------ #
    # Emission
    # ------------------------------------------------------------------ #

    def _emit(self, source: str) -> AssembledProgram:
        pushes = sum(1 for opcode, *_ in self.parsed
                     if opcode == Opcode.PUSH)
        max_packet_word = self._max_packet_word()

        if self.perhop_words is not None:
            perhop_words = self.perhop_words
        elif self.mode == AddressingMode.HOP:
            perhop_words = max_packet_word + 1
        else:
            perhop_words = pushes

        if self.memory_words is not None:
            memory_words = self.memory_words
        elif self.mode == AddressingMode.STACK:
            memory_words = max(perhop_words * self.hops,
                               max_packet_word + 1)
        elif self.mode == AddressingMode.HOP:
            memory_words = perhop_words * self.hops
        else:
            memory_words = max_packet_word + 1 if self.parsed else 0

        pool: List[int] = []
        pool_base = memory_words
        instructions: List[Instruction] = []
        lines: List[int] = []
        for opcode, operands, number, raw in self.parsed:
            instructions.append(
                self._encode(opcode, operands, pool, pool_base, number, raw))
            lines.append(number)

        total_words = memory_words + len(pool)
        memory = bytearray(total_words * self.word_size)
        program = AssembledProgram(
            instructions=instructions,
            initial_memory=b"",
            mode=self.mode,
            word_size=self.word_size,
            perhop_len_bytes=perhop_words * self.word_size,
            memory_words=memory_words,
            pool_base_word=pool_base,
            source=source,
            symbols=dict(self.used_symbols),
            hops=self.hops,
            lines=lines,
        )
        # Fill initial memory through a scratch TPPSection for bounds and
        # masking behaviour identical to run time.
        scratch = TPPSection(instructions=[], memory=memory,
                             word_size=self.word_size)
        for index, value in self.data_directives:
            if index >= memory_words:
                raise AssemblerError(
                    f".data index {index} outside the {memory_words} "
                    f"declared memory words")
            scratch.write_word(index * self.word_size, value)
        for slot, value in enumerate(pool):
            scratch.write_word((pool_base + slot) * self.word_size, value)
        program.initial_memory = bytes(memory)
        return program

    def _max_packet_word(self) -> int:
        """Highest packet word any operand touches (pairs take two)."""
        highest = -1
        for opcode, operands, _, _ in self.parsed:
            for position, operand in enumerate(operands):
                if operand.kind != "packet":
                    continue
                width = 2 if (opcode in PAIR_OPERAND_OPCODES
                              and position == 1) else 1
                highest = max(highest, operand.value + width - 1)
        return highest

    def _encode(self, opcode: Opcode, operands: List[_Operand],
                pool: List[int], pool_base: int,
                number: int, raw: str) -> Instruction:
        if opcode == Opcode.NOP:
            return Instruction(Opcode.NOP)

        if opcode in (Opcode.PUSH, Opcode.POP):
            switch = self._expect(operands[0], "switch", number, raw)
            return Instruction(opcode, addr=switch.value)

        if opcode in (Opcode.LOAD, Opcode.STORE):
            switch = self._expect(operands[0], "switch", number, raw)
            packet = self._expect(operands[1], "packet", number, raw)
            return Instruction(opcode, addr=switch.value,
                               offset=packet.value)

        if opcode in PAIR_OPERAND_OPCODES:
            switch = self._expect(operands[0], "switch", number, raw)
            second, third = operands[1], operands[2]
            if second.kind == "packet" and third.kind == "packet":
                if third.value != second.value + 1:
                    raise AssemblerError(
                        f"{opcode.name} packet operands must be "
                        f"consecutive words, got {second.value} and "
                        f"{third.value}", number, raw)
                return Instruction(opcode, addr=switch.value,
                                   offset=second.value)
            if second.kind == "immediate" and third.kind == "immediate":
                offset = pool_base + len(pool)
                pool.extend([second.value, third.value])
                if offset + 1 > 0xFF:
                    raise AssemblerError(
                        "literal pool exceeds addressable packet memory",
                        number, raw)
                return Instruction(opcode, addr=switch.value, offset=offset)
            raise AssemblerError(
                f"{opcode.name} operands 2 and 3 must both be packet "
                f"references or both immediates", number, raw)

        # Arithmetic: OP [Packet:N], [Namespace:Stat]
        packet = self._expect(operands[0], "packet", number, raw)
        switch = self._expect(operands[1], "switch", number, raw)
        return Instruction(opcode, addr=switch.value, offset=packet.value)

    @staticmethod
    def _expect(operand: _Operand, kind: str, number: int,
                raw: str) -> _Operand:
        if operand.kind != kind:
            raise AssemblerError(
                f"expected a {kind} operand, got {operand.kind}",
                number, raw)
        return operand


def _split_operands(text: str) -> List[str]:
    """Split on commas that are not inside brackets."""
    if not text.strip():
        return []
    parts: List[str] = []
    depth = 0
    current = []
    for char in text:
        if char == "[":
            depth += 1
        elif char == "]":
            depth -= 1
        if char == "," and depth == 0:
            parts.append("".join(current))
            current = []
        else:
            current.append(char)
    parts.append("".join(current))
    return [part for part in (p.strip() for p in parts) if part]
