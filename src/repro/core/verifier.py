"""Static verification of TPP programs (the eBPF-style admission layer).

The paper's safety story (§3.4) is reactive: a malformed TPP is caught at
runtime, hop by hop, as dataplane faults stamped into the packet.  This
module adds the missing *proactive* layer: an abstract interpreter that,
given the network-wide :class:`~repro.core.memory_map.MemoryMap`, a hop
budget, the word size, and the TCPU's instruction limit, proves program
properties without executing a single instruction:

- **instruction count** against the switch limit (``TPP001``);
- **symbolic stack tracking** — PUSH/POP stack-pointer deltas are summed
  per instruction; because CEXEC kills the *suffix* of a program, every
  per-hop SP delta is a prefix sum, so the reachable SP interval after
  ``h`` hops is exactly ``[h * dmin, h * dmax]`` over the achievable
  per-hop deltas.  Overflow (``TPP002``) and underflow (``TPP003``) are
  therefore decided exactly, not approximated;
- **effective-address range analysis** for hop-relative and absolute
  packet-memory operands, including the ``(offset, offset+1)`` absolute
  pair reads of CSTORE/CEXEC (``TPP004``);
- **address resolution** against the memory map: unmapped regions
  (``TPP005``), writes into read-only statistics (``TPP006``), and —
  when the caller supplies the switch's SRAM allocations — accesses into
  another task's protection domain (``TPP007``);
- **CEXEC reachability**: a conditional whose operand words are provably
  constant and whose condition can never hold makes the rest of the
  program statically dead (``TPP008``); a constant-true conditional is
  reported as ``TPP010``.  The interval analysis only trusts operand
  words *no* instruction can overwrite; the relational pass
  (:mod:`repro.core.relational`) additionally tracks the values writes
  actually store, deciding fences the interval analysis must give up
  on, and names each switch-state write stranded behind a
  relationally-false fence with the ``TPP012`` info code — the fact the
  batched engine consumes to vectorize programs whose only
  non-vectorizable write is provably unreachable;
- **per-hop memory-budget accounting**: bytes consumed per hop times the
  hop budget against the allocated packet memory (``TPP009``).

A clean program earns a :class:`VerifiedProgram` certificate.  The
certificate is *per-execution* sound: it pins the program fingerprint,
memory length and per-hop stride, and carries a ``[guard_lo, guard_hi]``
interval for the header's hop/SP counter such that **one** execution
starting inside the interval cannot violate packet-memory bounds or the
stack discipline.  The TCPU checks the guard on every execution
(:meth:`repro.core.tcpu.TCPU.trust`) and falls back to the fully-checked
closures when it fails (a corrupted or replayed header), so eliding the
per-instruction bounds checks never changes observable behaviour.
Switch-side protection (read-only statistics, SRAM domains, unbound
addresses) is *not* elided — those faults depend on per-switch state the
verifier cannot see, and stay inside the MMU accessors.

Dead-code analysis (``TPP008``) is deliberately lint-only: it reads the
program's *initial* memory image, but packet memory mutates in flight, so
no check elision is ever based on reachability.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    Any,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.core.exceptions import FaultCode, TPPError
from repro.core.isa import (
    HOP_RELATIVE_OPCODES,
    Instruction,
    Opcode,
    PAIR_OPERAND_OPCODES,
    SWITCH_WRITING_OPCODES,
)
from repro.core.memory_map import MemoryMap, SRAM_BASE, is_sram, region_of
from repro.core.racecheck import (
    analyze_sram_dataflow,
    collect_constant_fences,
    collect_sram_accesses,
    written_byte_intervals,
)
from repro.core.relational import (
    RelationalSummary,
    analyze_relations,
)
from repro.core.tcpu import DEFAULT_MAX_INSTRUCTIONS
from repro.core.tpp import AddressingMode, TPPSection, program_key_of

#: Hop horizon for the capacity scan when no explicit budget is given.
#: Far beyond any real path length; it bounds the analysis, not programs.
HOP_SCAN_LIMIT = 1024

#: Upper clamp of certificate guards — the TPP header's hop/SP field is
#: 16 bits, so no in-flight section can carry a larger counter.
GUARD_MAX = 0xFFFF

#: Opcodes that read their switch virtual address.
SWITCH_READING_OPCODES = frozenset({
    Opcode.PUSH, Opcode.LOAD, Opcode.CSTORE, Opcode.CEXEC,
    Opcode.ADD, Opcode.SUB, Opcode.AND, Opcode.OR, Opcode.XOR,
    Opcode.MIN, Opcode.MAX,
})

#: Stable diagnostic codes with their default severity and the runtime
#: fault each one predicts (``None`` for pure lint findings).
DIAGNOSTIC_CODES: Dict[str, Tuple[str, Optional[FaultCode]]] = {
    "TPP001": ("error", FaultCode.TOO_MANY_INSTRUCTIONS),
    "TPP002": ("error", FaultCode.STACK_OVERFLOW),
    "TPP003": ("error", FaultCode.STACK_UNDERFLOW),
    "TPP004": ("error", FaultCode.MEMORY_BOUNDS),
    "TPP005": ("error", FaultCode.BAD_ADDRESS),
    "TPP006": ("error", FaultCode.WRITE_PROTECTED),
    "TPP007": ("error", FaultCode.SRAM_PROTECTION),
    "TPP008": ("warning", None),
    "TPP009": ("info", None),
    "TPP010": ("info", None),
    "TPP011": ("error", None),
    "TPP012": ("info", None),
}


class VerificationError(TPPError):
    """An enforced admission check rejected a program.

    Carries the full :class:`VerificationResult` so callers can render
    every diagnostic, not just the first.
    """

    def __init__(self, result: "VerificationResult") -> None:
        errors = result.errors
        summary = "; ".join(
            f"{d.code}: {d.message}" for d in errors[:3])
        if len(errors) > 3:
            summary += f" (+{len(errors) - 3} more)"
        super().__init__(f"TPP verification failed: {summary}")
        self.result = result


@dataclass(frozen=True)
class Diagnostic:
    """One finding of the verifier, with a stable machine-readable code."""

    code: str                          #: ``TPP0xx``
    severity: str                      #: ``error`` | ``warning`` | ``info``
    message: str
    instruction: Optional[int] = None  #: index into the program, if any
    line: Optional[int] = None         #: source line, when assembled
    hop: Optional[int] = None          #: earliest hop the fault can occur
    fault: Optional[FaultCode] = None  #: runtime fault this predicts

    def format(self, source_name: str = "") -> str:
        """Human-readable one-liner, ``file:line:`` prefixed when known."""
        prefix = ""
        if source_name:
            prefix = (f"{source_name}:{self.line}: " if self.line
                      else f"{source_name}: ")
        elif self.line:
            prefix = f"line {self.line}: "
        where = []
        if self.instruction is not None:
            where.append(f"instruction {self.instruction}")
        if self.hop is not None:
            where.append(f"hop {self.hop}")
        suffix = f" [{', '.join(where)}]" if where else ""
        return (f"{prefix}{self.code} {self.severity}: "
                f"{self.message}{suffix}")

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready representation (for ``tppasm lint --json``)."""
        return {
            "code": self.code,
            "severity": self.severity,
            "message": self.message,
            "instruction": self.instruction,
            "line": self.line,
            "hop": self.hop,
            "fault": self.fault.name if self.fault else None,
        }


@dataclass(frozen=True)
class VerifiedProgram:
    """Certificate that a program is safe to run with checks elided.

    Sound *per execution*: any single execution of the fingerprinted
    program over packet memory of exactly ``memory_len`` bytes (with
    per-hop stride ``perhop_len_bytes``) whose starting hop/SP counter
    lies in ``[guard_lo, guard_hi]`` cannot overrun packet memory or
    violate the stack discipline.  The TCPU re-checks those three pinned
    facts before every execution and silently falls back to the checked
    closures when any fails, so trusting a certificate never changes
    observable behaviour — it only removes provably-dead branches.
    """

    program_key: bytes
    mode: AddressingMode
    word_size: int
    n_instructions: int
    memory_len: int
    perhop_len_bytes: int
    max_hops: int
    guard_lo: int
    guard_hi: int
    has_cexec: bool
    #: Task the program was verified under (TPP007 isolation domain).
    task_id: int = 0
    #: Word-level SRAM access sets as flat ``(word, instruction)``
    #: pairs — the raw material for fleet race analysis
    #: (:mod:`repro.core.racecheck`), pinned into the certificate so
    #: admission layers can race-check without the instructions.
    sram_reads: Tuple[Tuple[int, int], ...] = ()
    sram_writes: Tuple[Tuple[int, int], ...] = ()
    sram_claims: Tuple[Tuple[int, int], ...] = ()
    #: Provably-stable CEXEC fences as ``(index, addr, mask, expected)``
    #: tuples (:func:`repro.core.racecheck.collect_constant_fences`) —
    #: lets the fleet race analysis discount access pairs separated by
    #: mutually exclusive per-switch predicates.  Empty on certificates
    #: minted before the fence model existed: the conservative
    #: may-access analysis applies to those unchanged.
    sram_fences: Tuple[Tuple[int, int, int, int], ...] = ()
    #: Dataflow class of every written/claimed SRAM word as sorted
    #: ``(word, class)`` pairs (:func:`repro.core.racecheck.
    #: analyze_sram_dataflow`): ``accumulate`` (additive
    #: read-modify-write chains, prefix-scan vectorizable), ``claim``
    #: (CSTORE-only, first-match-wins), ``private`` (written but never
    #: read back, last-writer-wins) or ``mixed`` (safe lane only).  The
    #: batched engine refuses to vectorize writes unless the plan's own
    #: analysis reproduces exactly this pinned classification.  Empty on
    #: certificates minted before the write lanes existed — which
    #: (conservatively) demotes their write-bearing programs.
    sram_dataflow: Tuple[Tuple[int, str], ...] = ()
    #: Relational facts (:func:`repro.core.relational.analyze_relations`
    #: run with ``entry=None``, i.e. valid for *any* in-guard entry
    #: counter): per-write value descriptions, claim fire conditions,
    #: dead reads and the relationally-dead suffix.  Fleet race analysis
    #: (:func:`repro.core.racecheck.summarize_certificate`) folds the
    #: fleet-independent facts into the access sets and feeds the rest
    #: to the per-switch claim-epoch fixpoint; ``None`` on certificates
    #: minted before the relational layer existed (conservative
    #: may-analysis applies unchanged).
    sram_relational: Optional[RelationalSummary] = None

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready representation (for ``tppasm lint --json``)."""
        return {
            "program_key": self.program_key.hex(),
            "mode": self.mode.name.lower(),
            "word_size": self.word_size,
            "n_instructions": self.n_instructions,
            "memory_len": self.memory_len,
            "perhop_len_bytes": self.perhop_len_bytes,
            "max_hops": self.max_hops,
            "guard_lo": self.guard_lo,
            "guard_hi": self.guard_hi,
            "has_cexec": self.has_cexec,
            "task_id": self.task_id,
            "sram_reads": [list(p) for p in self.sram_reads],
            "sram_writes": [list(p) for p in self.sram_writes],
            "sram_claims": [list(p) for p in self.sram_claims],
            "sram_fences": [list(f) for f in self.sram_fences],
            "sram_dataflow": [list(p) for p in self.sram_dataflow],
            "sram_relational": (self.sram_relational.to_dict()
                                if self.sram_relational else None),
        }


@dataclass
class VerificationResult:
    """Everything one :func:`verify` call established."""

    diagnostics: List[Diagnostic] = field(default_factory=list)
    certificate: Optional[VerifiedProgram] = None
    #: Hop capacity of the allocated packet memory, from the TPP009
    #: budget scan: the first hop whose worst-case stack or bounds
    #: access would fault, or ``None`` when no violation exists inside
    #: the scan horizon (effectively unbounded).  Surfaced structurally
    #: so admission layers can budget hops without parsing diagnostics.
    hop_capacity: Optional[int] = None

    @property
    def ok(self) -> bool:
        """No error-severity diagnostics (warnings/info allowed)."""
        return not self.errors

    @property
    def errors(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == "error"]

    @property
    def warnings(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == "warning"]

    def predicted_faults(self) -> List[FaultCode]:
        """Runtime fault codes the error diagnostics predict, in order."""
        return [d.fault for d in self.errors if d.fault is not None]

    def format(self, source_name: str = "") -> str:
        """All diagnostics plus a verdict line, human-readable."""
        lines = [d.format(source_name) for d in self.diagnostics]
        n_err, n_warn = len(self.errors), len(self.warnings)
        verdict = "verified" if self.ok else "rejected"
        lines.append(f"{verdict}: {n_err} error(s), {n_warn} warning(s)")
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready representation (for ``tppasm lint --json``)."""
        return {
            "ok": self.ok,
            "hop_capacity": self.hop_capacity,
            "diagnostics": [d.to_dict() for d in self.diagnostics],
            "certificate": (self.certificate.to_dict()
                            if self.certificate else None),
        }

    def raise_on_error(self) -> "VerificationResult":
        """Raise :class:`VerificationError` unless verification passed."""
        if not self.ok:
            raise VerificationError(self)
        return self


# --------------------------------------------------------------------- #
# The abstract interpreter
# --------------------------------------------------------------------- #

def verify(instructions: Sequence[Instruction], *,
           mode: AddressingMode = AddressingMode.STACK,
           word_size: int = 4,
           memory_len: int = 0,
           perhop_len_bytes: int = 0,
           memory_map: Optional[MemoryMap] = None,
           max_instructions: int = DEFAULT_MAX_INSTRUCTIONS,
           max_hops: Optional[int] = None,
           initial_memory: Optional[bytes] = None,
           task_id: int = 0,
           sram_regions: Optional[Iterable[Any]] = None,
           lines: Optional[Sequence[int]] = None) -> VerificationResult:
    """Statically verify a decoded TPP program.

    ``max_hops`` is the admission horizon: the number of switch
    executions the program must survive.  ``None`` derives the horizon
    from what the allocated packet memory can actually support (the
    §2.1 reading: the end-host preallocated exactly the memory it
    needs), so only a program that cannot complete even its *first*
    execution is rejected on hop-dependent grounds.

    ``initial_memory`` enables the constant-condition CEXEC analysis
    (``TPP008``/``TPP010``); ``sram_regions`` (objects with
    ``contains(word)``/``task_id``, e.g.
    :class:`repro.core.mmu.SRAMRegion`) enables the SRAM protection
    check (``TPP007``) against a concrete switch allocation table.
    ``lines`` maps instruction index to a source line for diagnostics.
    """
    checker = _Checker(list(instructions), mode, word_size, memory_len,
                       perhop_len_bytes,
                       memory_map if memory_map else MemoryMap.standard(),
                       max_instructions, max_hops, initial_memory,
                       task_id, sram_regions, lines)
    return checker.run()


def verify_program(program: Any,
                   memory_map: Optional[MemoryMap] = None,
                   max_instructions: int = DEFAULT_MAX_INSTRUCTIONS,
                   max_hops: Optional[int] = None,
                   task_id: int = 0,
                   sram_regions: Optional[Iterable[Any]] = None,
                   ) -> VerificationResult:
    """Verify an :class:`~repro.core.assembler.AssembledProgram`.

    The hop budget defaults to the budget the program was assembled for
    (its ``hops`` directive), and diagnostics carry source lines.
    """
    if max_hops is None:
        max_hops = getattr(program, "hops", None)
    return verify(
        program.instructions,
        mode=program.mode,
        word_size=program.word_size,
        memory_len=len(program.initial_memory),
        perhop_len_bytes=program.perhop_len_bytes,
        memory_map=memory_map,
        max_instructions=max_instructions,
        max_hops=max_hops,
        initial_memory=bytes(program.initial_memory),
        task_id=task_id,
        sram_regions=sram_regions,
        lines=getattr(program, "lines", None),
    )


def verify_section(tpp: TPPSection,
                   memory_map: Optional[MemoryMap] = None,
                   max_instructions: int = DEFAULT_MAX_INSTRUCTIONS,
                   max_hops: Optional[int] = None,
                   sram_regions: Optional[Iterable[Any]] = None,
                   ) -> VerificationResult:
    """Verify a wire-decoded TPP section (edge-admission use).

    With ``max_hops=None`` the horizon is derived from the section's own
    memory capacity — an in-flight section does not declare a hop
    budget, so admission asks "is this program self-consistent with the
    memory it carries?".
    """
    return verify(
        tpp.instructions,
        mode=tpp.mode,
        word_size=tpp.word_size,
        memory_len=len(tpp.memory),
        perhop_len_bytes=tpp.perhop_len_bytes,
        memory_map=memory_map,
        max_instructions=max_instructions,
        max_hops=max_hops,
        initial_memory=bytes(tpp.memory),
        task_id=tpp.task_id,
        sram_regions=sram_regions,
    )


class _Checker:
    """Single-use analysis state for one :func:`verify` call."""

    def __init__(self, instructions, mode, word_size, memory_len,
                 perhop_len_bytes, memory_map, max_instructions,
                 max_hops, initial_memory, task_id, sram_regions,
                 lines) -> None:
        self.instructions = instructions
        self.mode = mode
        self.word = word_size
        self.memory_len = memory_len
        self.perhop = perhop_len_bytes
        self.memory_map = memory_map
        self.max_instructions = max_instructions
        self.max_hops = max_hops
        self.initial_memory = initial_memory
        self.task_id = task_id
        self.sram_regions = list(sram_regions) if sram_regions else []
        self.lines = lines
        self.diagnostics: List[Diagnostic] = []
        self.hop_mode = mode == AddressingMode.HOP
        n = len(instructions)
        # Running SP delta *before* each instruction (prefix sums).
        self.prefix = [0] * (n + 1)
        for j, instruction in enumerate(instructions):
            delta = 0
            if instruction.opcode == Opcode.PUSH:
                delta = self.word
            elif instruction.opcode == Opcode.POP:
                delta = -self.word
            self.prefix[j + 1] = self.prefix[j] + delta
        # Achievable per-hop SP deltas: the full program, or the prefix
        # ending at any CEXEC that disabled the suffix.  CEXEC itself has
        # delta zero, so prefix[k] is the delta of that truncated path.
        deltas = {self.prefix[n]}
        for k, instruction in enumerate(instructions):
            if instruction.opcode == Opcode.CEXEC:
                deltas.add(self.prefix[k])
        self.dmin = min(deltas)
        self.dmax = max(deltas)
        self.pushes = [j for j, i in enumerate(instructions)
                       if i.opcode == Opcode.PUSH]
        self.pops = [j for j, i in enumerate(instructions)
                     if i.opcode == Opcode.POP]
        # Hop-relative packet accesses: (index, first byte offset).
        self.hop_relative = [
            (j, i.offset * self.word) for j, i in enumerate(instructions)
            if self.hop_mode and i.opcode in HOP_RELATIVE_OPCODES]
        # Relational facts, valid for any in-guard entry counter
        # (``entry=None``): consumed by the dead-code analysis and
        # pinned on the certificate for the fleet race layer.
        self.relational: Optional[RelationalSummary] = None
        if initial_memory is not None and instructions:
            self.relational = analyze_relations(
                instructions, mode=mode, word_size=word_size,
                memory_len=memory_len,
                perhop_len_bytes=perhop_len_bytes,
                initial_memory=initial_memory, entry=None,
                memory_map=self.memory_map)

    # -- diagnostics ---------------------------------------------------- #

    def diag(self, code: str, message: str,
             instruction: Optional[int] = None,
             hop: Optional[int] = None,
             severity: Optional[str] = None) -> None:
        default_severity, fault = DIAGNOSTIC_CODES[code]
        line = None
        if (self.lines is not None and instruction is not None
                and instruction < len(self.lines)):
            line = self.lines[instruction]
        self.diagnostics.append(Diagnostic(
            code=code, severity=severity or default_severity,
            message=message, instruction=instruction, line=line, hop=hop,
            fault=fault))

    # -- driver --------------------------------------------------------- #

    def run(self) -> VerificationResult:
        self.check_instruction_count()
        self.check_switch_addresses()
        self.check_absolute_accesses()
        capacity = self.check_hop_budget()
        self.check_dead_code()
        result = VerificationResult(diagnostics=self.diagnostics,
                                    hop_capacity=capacity)
        if result.ok and self.word in (4, 8):
            result.certificate = self.certificate(capacity)
        return result

    # -- individual analyses -------------------------------------------- #

    def check_instruction_count(self) -> None:
        n = len(self.instructions)
        if n > self.max_instructions:
            self.diag("TPP001",
                      f"{n} instructions exceed the per-TPP limit of "
                      f"{self.max_instructions}", hop=0)

    def check_switch_addresses(self) -> None:
        """Resolve every switch operand against the network-wide map."""
        for j, instruction in enumerate(self.instructions):
            opcode = instruction.opcode
            reads = opcode in SWITCH_READING_OPCODES
            writes = opcode in SWITCH_WRITING_OPCODES
            if not (reads or writes):
                continue
            addr = instruction.addr
            descriptor = self.memory_map.describe(addr)
            if descriptor is None:
                self.diag("TPP005",
                          f"{opcode.name} references unmapped address "
                          f"{addr:#06x} ({region_of(addr)} region)",
                          instruction=j)
                continue
            if writes and not descriptor.writable:
                self.diag("TPP006",
                          f"{opcode.name} writes read-only statistic "
                          f"{descriptor.name}", instruction=j)
            if self.sram_regions and is_sram(addr):
                word = addr - SRAM_BASE
                for region in self.sram_regions:
                    if (region.contains(word)
                            and region.task_id != self.task_id):
                        self.diag(
                            "TPP007",
                            f"{opcode.name} accesses SRAM word {word} "
                            f"owned by task {region.task_id} (program "
                            f"runs as task {self.task_id})",
                            instruction=j)
                        break

    def check_absolute_accesses(self) -> None:
        """Hop-independent packet-memory accesses (decided at hop 0).

        Covers CSTORE/CEXEC's absolute operand pairs in every mode, and
        the single-word operands of LOAD/STORE/arithmetic when the
        program is not hop-addressed.
        """
        for j, instruction in enumerate(self.instructions):
            opcode = instruction.opcode
            base = instruction.offset * self.word
            if opcode in PAIR_OPERAND_OPCODES:
                width = 2 * self.word
            elif (opcode in HOP_RELATIVE_OPCODES and not self.hop_mode):
                width = self.word
            else:
                continue
            if base + width > self.memory_len:
                what = ("operand pair" if width > self.word else "operand")
                self.diag("TPP004",
                          f"{opcode.name} {what} at bytes "
                          f"[{base}, {base + width}) overruns packet "
                          f"memory of {self.memory_len} bytes",
                          instruction=j)

    def _violation_at(self, h: int) -> Optional[Tuple[str, str, int]]:
        """First (code, message, instruction) violated when the hop/SP
        counter arrives at its worst reachable value after ``h`` clean
        hops."""
        memlen, word = self.memory_len, self.word
        hi, lo = h * self.dmax, h * self.dmin
        for j in self.pushes:
            sp = hi + self.prefix[j]
            if sp + word > memlen:
                return ("TPP002",
                        f"PUSH can reach SP={sp} past packet memory of "
                        f"{memlen} bytes", j)
        for j in self.pops:
            if lo + self.prefix[j] < word:
                return ("TPP003",
                        f"POP can reach SP={lo + self.prefix[j]} with "
                        f"an empty stack", j)
            if hi + self.prefix[j] > memlen:
                return ("TPP004",
                        f"POP can read at byte "
                        f"{hi + self.prefix[j] - word} past packet "
                        f"memory of {memlen} bytes", j)
        for j, offset in self.hop_relative:
            ea = h * self.perhop + offset
            if ea + word > memlen:
                opcode = self.instructions[j].opcode
                return ("TPP004",
                        f"{opcode.name} hop-relative operand at byte "
                        f"{ea} overruns packet memory of {memlen} "
                        f"bytes", j)
        return None

    def check_hop_budget(self) -> Optional[int]:
        """Scan hops for the first stack/bounds violation; returns the
        memory's hop capacity (``None`` when unbounded in the horizon).

        Emits the violation as an error when it falls inside the
        requested budget (always, for a hop-0 violation: the program
        cannot complete even one execution), and the ``TPP009``
        budget-accounting record either way.
        """
        if self.hop_mode and (self.pushes or self.pops):
            for j in self.pushes + self.pops:
                opcode = self.instructions[j].opcode
                self.diag("TPP011",
                          f"{opcode.name} in a hop-addressed program: "
                          f"the header counter is the hop index, so "
                          f"stack discipline cannot be verified",
                          instruction=j)
            return 0
        # Always scan the full horizon so the TPP009 record reports the
        # memory's true capacity; only violations *inside* the requested
        # budget become errors.
        capacity: Optional[int] = None
        violation = None
        for h in range(max(self.max_hops or 0, HOP_SCAN_LIMIT)):
            violation = self._violation_at(h)
            if violation is not None:
                capacity = h
                break
        if violation is not None:
            code, message, j = violation
            if capacity == 0:
                self.diag(code, message + " (on the first execution)",
                          instruction=j, hop=0)
            elif self.max_hops is not None and capacity < self.max_hops:
                self.diag(code, message + f" at hop {capacity} of the "
                          f"{self.max_hops}-hop budget",
                          instruction=j, hop=capacity)
        self._budget_record(capacity)
        return capacity

    def _budget_record(self, capacity: Optional[int]) -> None:
        footprint = self.perhop if self.hop_mode else max(self.dmax, 0)
        if footprint <= 0:
            return
        supported = (f"{capacity}" if capacity is not None
                     else f">= {HOP_SCAN_LIMIT}")
        budget = (f"{self.max_hops}" if self.max_hops is not None
                  else "unspecified")
        severity = None
        if (capacity is not None and self.max_hops is not None
                and capacity < self.max_hops):
            severity = "warning"
        self.diag("TPP009",
                  f"per-hop footprint {footprint} B x hop budget "
                  f"{budget} over {self.memory_len} B of packet memory "
                  f"(supports {supported} hop(s))", severity=severity)

    # -- CEXEC reachability --------------------------------------------- #

    def _written_intervals(self) -> List[Tuple[int, int]]:
        """Over-approximated byte ranges any instruction can write into
        packet memory across the whole hop horizon (delegated to the
        shared implementation the fence extraction also uses)."""
        return written_byte_intervals(
            self.instructions, mode=self.mode, word_size=self.word,
            memory_len=self.memory_len, perhop_len_bytes=self.perhop,
            max_hops=(self.max_hops if self.max_hops is not None
                      else HOP_SCAN_LIMIT))

    def check_dead_code(self) -> None:
        """Constant-condition CEXEC analysis (lint-only, never elision).

        Requires the initial memory image, and only trusts operand words
        no instruction can overwrite on any hop.
        """
        memory = self.initial_memory
        if memory is None:
            return
        cexecs = [j for j, i in enumerate(self.instructions)
                  if i.opcode == Opcode.CEXEC]
        if not cexecs:
            return
        written = self._written_intervals()
        word = self.word
        reported: set = set()
        for k in cexecs:
            base = self.instructions[k].offset * word
            end = base + 2 * word
            if end > len(memory):
                continue  # already a TPP004 error
            if any(lo < end and base < hi for lo, hi in written):
                continue  # operands are mutable: outcome unknown
            mask = int.from_bytes(memory[base:base + word], "big")
            expected = int.from_bytes(memory[base + word:end], "big")
            if expected & ~mask:
                dead = len(self.instructions) - 1 - k
                if dead > 0:
                    reported.add(k)
                    self.diag(
                        "TPP008",
                        f"CEXEC condition can never hold (value "
                        f"{expected:#x} has bits outside mask "
                        f"{mask:#x}): the {dead} following "
                        f"instruction(s) are statically dead",
                        instruction=k)
            elif mask == 0 and expected == 0:
                reported.add(k)
                self.diag("TPP010",
                          "CEXEC condition is constant-true (mask 0, "
                          "value 0): the conditional never disables "
                          "anything", instruction=k)
        self._check_relational_dead(reported)

    def _check_relational_dead(self, reported: set) -> None:
        """Relational tightening of the CEXEC analysis.

        The interval pass above gives up as soon as a fence operand lies
        inside *any* written byte range; the relational walker tracks
        the values those writes actually store, so it decides strictly
        more fences.  A relationally-false fence yields the same
        ``TPP008`` (when the interval pass missed it) plus one
        ``TPP012`` info record per switch-state write stranded behind
        it — the machine-readable fact
        :func:`repro.core.fastpath.build_batch_plan` uses to vectorize
        around a dead non-vectorizable write.
        """
        relational = self.relational
        if relational is None:
            return
        for k, _, mask, expected in relational.const_cexecs:
            if k in reported:
                continue
            if mask == 0 and expected == 0:
                reported.add(k)
                self.diag("TPP010",
                          "CEXEC condition is relationally "
                          "constant-true (mask 0, value 0): the "
                          "conditional never disables anything",
                          instruction=k)
        dead_at = relational.dead_suffix_at
        if dead_at is None:
            return
        dead = len(self.instructions) - 1 - dead_at
        if dead > 0 and dead_at not in reported:
            self.diag(
                "TPP008",
                f"CEXEC condition is relationally never true: the "
                f"{dead} following instruction(s) are statically "
                f"dead", instruction=dead_at)
        for j in range(dead_at + 1, len(self.instructions)):
            opcode = self.instructions[j].opcode
            if opcode in SWITCH_WRITING_OPCODES:
                self.diag(
                    "TPP012",
                    f"{opcode.name} is relationally unreachable "
                    f"(behind the statically-false CEXEC at "
                    f"instruction {dead_at}): it can never execute",
                    instruction=j)

    # -- certificate ---------------------------------------------------- #

    def certificate(self, capacity: Optional[int]) -> VerifiedProgram:
        """Build the per-execution safety guard for a clean program."""
        word, memlen = self.word, self.memory_len
        guard_lo, guard_hi = 0, GUARD_MAX
        if self.hop_mode:
            for _, offset in self.hop_relative:
                if self.perhop > 0:
                    guard_hi = min(guard_hi,
                                   (memlen - offset - word) // self.perhop)
                elif offset + word > memlen:  # unreachable: TPP004 above
                    guard_hi = -1
        else:
            for j in self.pushes:
                guard_hi = min(guard_hi, memlen - word - self.prefix[j])
            for j in self.pops:
                guard_lo = max(guard_lo, word - self.prefix[j])
                guard_hi = min(guard_hi, memlen - self.prefix[j])
        max_hops = self.max_hops
        if max_hops is None:
            max_hops = capacity if capacity is not None else HOP_SCAN_LIMIT
        reads, writes, claims = collect_sram_accesses(self.instructions)
        dataflow = analyze_sram_dataflow(
            self.instructions, mode=self.mode, word_size=word)
        fences = collect_constant_fences(
            self.instructions, mode=self.mode, word_size=word,
            memory_len=memlen, perhop_len_bytes=self.perhop,
            initial_memory=self.initial_memory, max_hops=self.max_hops,
            memory_map=self.memory_map)
        return VerifiedProgram(
            program_key=program_key_of(self.instructions, self.mode,
                                       self.word),
            mode=self.mode,
            word_size=word,
            n_instructions=len(self.instructions),
            memory_len=memlen,
            perhop_len_bytes=self.perhop,
            max_hops=max_hops,
            guard_lo=max(guard_lo, 0),
            guard_hi=max(min(guard_hi, GUARD_MAX), -1),
            has_cexec=any(i.opcode == Opcode.CEXEC
                          for i in self.instructions),
            task_id=self.task_id,
            sram_reads=reads,
            sram_writes=writes,
            sram_claims=claims,
            sram_fences=fences,
            sram_dataflow=dataflow.classes,
            sram_relational=self.relational,
        )
