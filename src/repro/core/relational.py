"""Relational abstract interpretation over TPP programs.

The interval-only analyses this repo grew first — the verifier's
written-byte intervals (PR 4) and the race checker's constant-mask
fences (PR 5/7) — treat every packet-memory slot and every SRAM word as
an opaque may-value.  That loses exactly the facts the paper's CSTORE
protocol creates: a claim writes the word's *old value* back into packet
memory (an equality between a packet slot and an SRAM word), a
read-modify-write chain stores ``entry(w) + delta`` (an affine relation),
and a claim only fires when the word equals a *known constant* (a
disequality when it provably cannot).  This module tracks those
relations instruction by instruction and exports them as machine-checkable
facts the other layers consume:

- :func:`analyze_relations` walks one program and produces a
  :class:`RelationalSummary`: per-write value descriptions (constant /
  affine-in-entry / unknown), claim fire conditions, provably
  *unobservable* SRAM reads, provably dead claim write-backs, CEXECs with
  relationally-constant operands (a superset of the interval-proven
  fences), and the index of the first CEXEC that can never pass.
- :func:`reachable_values` runs a fleet-level fixpoint over those
  summaries: given a switch's initial SRAM image (the per-switch
  ``sram_values`` binding, the SRAM analog of ``fence_values``), it
  computes a sound over-approximation of every value each word can ever
  hold under *any* interleaving — the word's **claim epochs**.  A CSTORE
  whose condition constant is outside the word's reachable set can never
  fire on that switch; a store of a value the word always holds can
  never change it.
- :func:`refine_summary` applies both layers to a
  :class:`~repro.core.racecheck.ProgramAccessSummary`, demoting claims
  that cannot fire to plain reads (their write-back still observes the
  word), deleting writes that cannot change the word and reads that
  cannot reach an observable, so the pairwise race classification only
  counts accesses that can actually produce divergence.

Soundness contract
------------------

Relational facts are computed for **fault-free executions entering the
switch with a known hop/SP counter** (``entry``).  Both assumptions are
the ones the surrounding system already enforces: admission is gated on
the verifier (TPP001–TPP011 prove in-guard executions cannot fault), and
a race table guards one deployment point, where the entering counter is
known the same way the switch's stable registers are (``fence_values``).
When the entry counter is *not* pinned (``entry=None``) the analysis
quantifies over the whole interval a PUSH could land in, degrading the
affected slots to unknown — never unsound, only less precise.

The oracle harness (``tests/props/test_race_harness.py``) measures the
payoff: binding the ground-truth switch's SRAM image the way it already
binds ``Switch:SwitchID`` retires the dominant remaining false-positive
classes (never-firing claimers counted as writers, reads that never
reach an observable) while the zero-false-negative bar holds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    Any,
    Dict,
    FrozenSet,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.core.isa import HOP_RELATIVE_OPCODES, Instruction, Opcode
from repro.core.memory_map import MemoryMap, SRAM_BASE, is_sram
from repro.core.tpp import AddressingMode

#: An abstract value atom: ``("c", k)`` is the constant ``k``;
#: ``("e", w, d)`` is ``entry(w) + d`` — the value SRAM word ``w`` held
#: when this program began executing, plus a constant, mod the word
#: width.  A value is a small frozenset of atoms (any of them may be the
#: concrete value) or ``None`` — unknown (top).
Atom = Tuple[Any, ...]
Value = Optional[FrozenSet[Atom]]

#: Join width: a value tracking more than this many candidate atoms
#: widens to unknown.  Claims and seeded constants keep sets tiny; only
#: degenerate programs hit the cap.
MAX_ATOMS = 8

#: Fleet fixpoint width: a word whose reachable-value set exceeds this
#: widens to top (e.g. an additive counter reaches unboundedly many
#: values).  Every widening is in the conservative direction.
MAX_REACH = 64

_ARITH = frozenset({
    Opcode.ADD, Opcode.SUB, Opcode.AND, Opcode.OR, Opcode.XOR,
    Opcode.MIN, Opcode.MAX,
})

#: How a claim's fire condition relates to the word's entry value.
FIRE_NEVER = "never"      #: provably never fires (in-program constants)
FIRE_ALWAYS = "always"    #: provably fires whenever the claim executes
FIRE_ENTRY = "entry"      #: fires iff the word's entry value is a cond
FIRE_MAYBE = "maybe"      #: unknown: treated as may-fire


@dataclass(frozen=True)
class SRAMWriteEffect:
    """One unconditional SRAM store, relationally described.

    ``atoms`` is the abstract value written (``None`` = unknown).
    ``inert`` marks stores proven to write the word's *current* value
    back — a no-op on every switch, regardless of the fleet around it.
    """

    index: int
    word: int
    atoms: Optional[Tuple[Atom, ...]]
    inert: bool = False


@dataclass(frozen=True)
class SRAMClaimEffect:
    """One CSTORE, relationally described.

    ``fire`` is one of the ``FIRE_*`` states; for :data:`FIRE_ENTRY` the
    claim fires iff the word's value when the program starts is one of
    ``conds``.  ``srcs`` is the abstract value a firing claim stores.
    """

    index: int
    word: int
    fire: str
    conds: Optional[Tuple[Atom, ...]]
    srcs: Optional[Tuple[Atom, ...]]


@dataclass(frozen=True)
class RelationalSummary:
    """Everything :func:`analyze_relations` proved about one program."""

    #: Relational descriptions of unconditional SRAM stores, by index.
    writes: Tuple[SRAMWriteEffect, ...] = ()
    #: Relational descriptions of CSTOREs, by index.
    claims: Tuple[SRAMClaimEffect, ...] = ()
    #: SRAM-reading instruction indices whose value provably never
    #: reaches an observable (final packet memory, SRAM, or control).
    dead_reads: Tuple[int, ...] = ()
    #: CSTORE indices whose old-value write-back is provably overwritten
    #: before the program ends without being read — the claim observes
    #: nothing.
    dead_claim_obs: Tuple[int, ...] = ()
    #: Index of the first CEXEC whose predicate is relationally constant
    #: *false* independent of any switch state (``expected & ~mask`` or a
    #: constant SRAM operand that fails the test): every instruction
    #: after it is unreachable on every switch.
    dead_suffix_at: Optional[int] = None
    #: Every CEXEC whose mask/expected operands are relationally
    #: constant, as ``(index, switch_vaddr, mask, expected)``.  Superset
    #: of the interval-proven fences: a PUSH at a pinned entry counter
    #: only clobbers the slots it actually reaches.
    const_cexecs: Tuple[Tuple[int, int, int, int], ...] = ()
    #: The :data:`const_cexecs` subset reading a stable register —
    #: mergeable into ``ProgramAccessSummary.fences``.
    stable_fences: Tuple[Tuple[int, int, int, int], ...] = ()

    def write_at(self, index: int) -> Optional[SRAMWriteEffect]:
        for effect in self.writes:
            if effect.index == index:
                return effect
        return None

    def claim_at(self, index: int) -> Optional[SRAMClaimEffect]:
        for effect in self.claims:
            if effect.index == index:
                return effect
        return None

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready form (pinned on verifier certificates)."""
        return {
            "writes": [[e.index, e.word,
                        None if e.atoms is None else [list(a)
                                                      for a in e.atoms],
                        e.inert] for e in self.writes],
            "claims": [[e.index, e.word, e.fire,
                        None if e.conds is None else [list(a)
                                                      for a in e.conds],
                        None if e.srcs is None else [list(a)
                                                     for a in e.srcs]]
                       for e in self.claims],
            "dead_reads": list(self.dead_reads),
            "dead_claim_obs": list(self.dead_claim_obs),
            "dead_suffix_at": self.dead_suffix_at,
            "const_cexecs": [list(f) for f in self.const_cexecs],
            "stable_fences": [list(f) for f in self.stable_fences],
        }


def _join(a: Value, b: Value) -> Value:
    if a is None or b is None:
        return None
    merged = a | b
    return merged if len(merged) <= MAX_ATOMS else None


def _shift(value: Value, k: int, mask: int) -> Value:
    """``value + k`` (mod word width), atom-wise."""
    if value is None:
        return None
    out: Set[Atom] = set()
    for atom in value:
        if atom[0] == "c":
            out.add(("c", (atom[1] + k) & mask))
        else:
            out.add(("e", atom[1], (atom[2] + k) & mask))
    return frozenset(out)


def _consts(value: Value) -> Optional[FrozenSet[int]]:
    """The concrete constants of a value, or ``None`` if any atom is
    entry-relative or the value is unknown."""
    if value is None:
        return None
    out: Set[int] = set()
    for atom in value:
        if atom[0] != "c":
            return None
        out.add(atom[1])
    return frozenset(out)


def _binop(opcode: Opcode, slot: Value, word_v: Value,
           mask: int) -> Value:
    """Abstract ``packet[slot] = packet[slot] OP switch[word]``."""
    if slot is None or word_v is None:
        return None
    out: Set[Atom] = set()
    for sa in slot:
        for wa in word_v:
            s_const = sa[0] == "c"
            w_const = wa[0] == "c"
            if opcode is Opcode.ADD:
                if s_const and w_const:
                    out.add(("c", (sa[1] + wa[1]) & mask))
                elif s_const:
                    out.add(("e", wa[1], (wa[2] + sa[1]) & mask))
                elif w_const:
                    out.add(("e", sa[1], (sa[2] + wa[1]) & mask))
                else:
                    return None
            elif opcode is Opcode.SUB:
                if s_const and w_const:
                    out.add(("c", (sa[1] - wa[1]) & mask))
                elif w_const and not s_const:
                    out.add(("e", sa[1], (sa[2] - wa[1]) & mask))
                else:
                    return None
            else:
                if not (s_const and w_const):
                    return None
                x, y = sa[1], wa[1]
                if opcode is Opcode.AND:
                    out.add(("c", x & y))
                elif opcode is Opcode.OR:
                    out.add(("c", x | y))
                elif opcode is Opcode.XOR:
                    out.add(("c", x ^ y))
                elif opcode is Opcode.MIN:
                    out.add(("c", min(x, y) & mask))
                else:
                    out.add(("c", max(x, y) & mask))
            if len(out) > MAX_ATOMS:
                return None
    return frozenset(out)


class _Walker:
    """Single straight-line pass over one program.

    TPP control flow has no join points: a CEXEC kills the whole suffix,
    so the state at instruction ``i`` is simply the straight-line state
    assuming every earlier CEXEC passed.  After an *undecided* CEXEC the
    walker enters conditional mode — state updates join with the
    not-executed state and taint kills are disabled — which keeps every
    later fact a sound may-fact.
    """

    def __init__(self, instructions: Sequence[Instruction], *,
                 mode: Any, word_size: int, memory_len: int,
                 perhop_len_bytes: int,
                 initial_memory: bytes,
                 entry: Optional[int],
                 stable_addrs: FrozenSet[int]) -> None:
        self.instructions = instructions
        self.hop_mode = mode == AddressingMode.HOP
        self.word = word_size
        self.mask = (1 << (8 * word_size)) - 1
        self.memory_len = memory_len
        self.perhop = perhop_len_bytes
        self.stable_addrs = stable_addrs
        # Slot state, keyed by absolute byte offset (word granularity).
        self.slots: Dict[int, Value] = {}
        self.taints: Dict[int, FrozenSet[Atom]] = {}
        for base in range(0, min(memory_len, len(initial_memory))
                          - word_size + 1, word_size):
            chunk = initial_memory[base:base + word_size]
            self.slots[base] = frozenset(
                {("c", int.from_bytes(chunk, "big"))})
        # Current SRAM value per word, relative to program entry.
        self.sram_now: Dict[int, Value] = {}
        # Entry counter: exact when pinned, else the conservative
        # interval [0, memory_len] any in-guard execution could use.
        if entry is not None:
            self.sp_lo = self.sp_hi = entry
        else:
            self.sp_lo, self.sp_hi = 0, memory_len
        self.conditional = False
        self.live: Set[Atom] = set()
        self.writes: List[SRAMWriteEffect] = []
        self.claims: List[SRAMClaimEffect] = []
        self.read_indices: List[int] = []
        self.claim_obs: List[int] = []
        self.const_cexecs: List[Tuple[int, int, int, int]] = []
        self.stable_fences: List[Tuple[int, int, int, int]] = []
        self.dead_suffix_at: Optional[int] = None

    # ----------------------- state helpers ----------------------- #

    def sram_value(self, w: int) -> Value:
        value = self.sram_now.get(w)
        if value is None and w not in self.sram_now:
            return frozenset({("e", w, 0)})
        return value

    def set_sram(self, w: int, value: Value) -> None:
        if self.conditional:
            value = _join(self.sram_value(w), value)
        self.sram_now[w] = value

    def slot_value(self, base: int) -> Value:
        return self.slots.get(base)

    def set_slot(self, base: int, value: Value,
                 taint: FrozenSet[Atom]) -> None:
        if self.conditional:
            value = _join(self.slots.get(base), value)
            taint = taint | self.taints.get(base, frozenset())
        self.slots[base] = value
        self.taints[base] = taint

    def clobber(self, lo: int, hi: int) -> None:
        """An imprecise write landed somewhere in ``[lo, hi)``: every
        intersecting slot becomes unknown and its taint survives (the
        overwrite is not guaranteed to replace it)."""
        for base in list(self.slots):
            if base < hi and lo < base + self.word:
                self.slots[base] = None
        # Taints are kept: a maybe-overwrite cannot kill a read.

    def mark_live(self, taint: Optional[FrozenSet[Atom]]) -> None:
        if taint:
            self.live.update(taint)

    def taint_of(self, base: int) -> FrozenSet[Atom]:
        return self.taints.get(base, frozenset())

    # ------------------------- the walk --------------------------- #

    def run(self) -> None:
        word = self.word
        mask = self.mask
        for j, instruction in enumerate(self.instructions):
            opcode = instruction.opcode
            addr = instruction.addr
            sram = is_sram(addr)
            w = addr - SRAM_BASE if sram else -1
            base = instruction.offset * word
            hop_rel = (self.hop_mode
                       and opcode in HOP_RELATIVE_OPCODES)
            if hop_rel:
                if self.sp_lo == self.sp_hi:
                    ea: Optional[int] = self.sp_lo * self.perhop + base
                else:
                    ea = None
                    ea_lo = self.sp_lo * self.perhop + base
                    ea_hi = self.sp_hi * self.perhop + base + word
            else:
                ea = base
            if opcode == Opcode.NOP:
                continue
            if opcode == Opcode.PUSH:
                value = self.sram_value(w) if sram else None
                taint = (frozenset({("r", j)}) if sram
                         else frozenset())
                if sram:
                    self.read_indices.append(j)
                if self.sp_lo == self.sp_hi and \
                        self.sp_lo % word == 0 and \
                        self.sp_lo + word <= self.memory_len:
                    self.set_slot(self.sp_lo, value, taint)
                else:
                    self.clobber(self.sp_lo, self.sp_hi + word)
                self.sp_lo += word
                self.sp_hi += word
                continue
            if opcode == Opcode.POP:
                self.sp_lo -= word
                self.sp_hi -= word
                if self.sp_lo == self.sp_hi:
                    value = self.slot_value(self.sp_lo)
                    taint = self.taint_of(self.sp_lo)
                else:
                    value, taint = None, frozenset()
                self.mark_live(taint)
                if sram:
                    self._record_write(j, w, value)
                continue
            if opcode == Opcode.LOAD:
                if sram:
                    value = self.sram_value(w)
                    taint = frozenset({("r", j)})
                    self.read_indices.append(j)
                else:
                    value, taint = None, frozenset()
                if ea is not None:
                    self.set_slot(ea, value, taint)
                else:
                    self.clobber(ea_lo, ea_hi)
                continue
            if opcode == Opcode.STORE:
                if ea is not None:
                    value = self.slot_value(ea)
                    taint = self.taint_of(ea)
                else:
                    value, taint = None, frozenset()
                self.mark_live(taint)
                if sram:
                    self._record_write(j, w, value)
                continue
            if opcode == Opcode.CSTORE:
                cond_v = self.slot_value(base)
                src_v = self.slot_value(base + word)
                self.mark_live(self.taint_of(base))
                self.mark_live(self.taint_of(base + word))
                if sram:
                    self._record_claim(j, w, cond_v, src_v)
                    old = self.sram_value(w)
                    self.set_slot(base, old, frozenset({("co", j)}))
                else:
                    self.set_slot(base, None, frozenset())
                continue
            if opcode == Opcode.CEXEC:
                if sram:
                    self.read_indices.append(j)
                    self.live.add(("r", j))
                self.mark_live(self.taint_of(base))
                self.mark_live(self.taint_of(base + word))
                m = _consts(self.slot_value(base))
                e = _consts(self.slot_value(base + word))
                if m is not None and e is not None \
                        and len(m) == 1 and len(e) == 1:
                    m_val, e_val = next(iter(m)), next(iter(e))
                    self.const_cexecs.append((j, addr, m_val, e_val))
                    if addr in self.stable_addrs:
                        self.stable_fences.append(
                            (j, addr, m_val, e_val))
                    verdict = self._evaluate_cexec(
                        sram, w, m_val, e_val)
                    if verdict is False:
                        self.dead_suffix_at = j
                        return
                    if verdict is True:
                        continue  # fence always passes: not a branch
                self.conditional = True
                continue
            if opcode in _ARITH:
                if ea is None:
                    self.mark_live(frozenset({("r", j)}) if sram
                                   else frozenset())
                    if sram:
                        self.read_indices.append(j)
                    self.clobber(ea_lo, ea_hi)
                    continue
                slot_v = self.slot_value(ea)
                taint = self.taint_of(ea)
                if sram:
                    self.read_indices.append(j)
                    word_v = self.sram_value(w)
                    taint = taint | frozenset({("r", j)})
                else:
                    word_v = None
                self.set_slot(ea, _binop(opcode, slot_v, word_v, mask),
                              taint)
                continue

    def _evaluate_cexec(self, sram: bool, w: int, m_val: int,
                        e_val: int) -> Optional[bool]:
        """Decide a constant-operand CEXEC when possible.

        ``expected & ~mask`` can never hold for any register value; a
        constant SRAM operand decides the test outright.  ``None`` means
        undecided (the fence hinges on unknown switch state).
        """
        if e_val & ~m_val:
            return False
        if sram:
            reg = _consts(self.sram_value(w))
            if reg is not None:
                verdicts = {(r & m_val) == e_val for r in reg}
                if len(verdicts) == 1:
                    return verdicts.pop()
        return None

    def _record_write(self, j: int, w: int, value: Value) -> None:
        current = self.sram_value(w)
        inert = (value is not None and current is not None
                 and len(value) == 1 and value == current)
        atoms = None if value is None else tuple(sorted(value))
        self.writes.append(
            SRAMWriteEffect(index=j, word=w, atoms=atoms, inert=inert))
        self.set_sram(w, value)

    def _record_claim(self, j: int, w: int, cond_v: Value,
                      src_v: Value) -> None:
        self.claim_obs.append(j)
        current = self.sram_value(w)
        conds = None if cond_v is None else tuple(sorted(cond_v))
        srcs = None if src_v is None else tuple(sorted(src_v))
        cur_consts = _consts(current)
        cond_consts = _consts(cond_v)
        fire = FIRE_MAYBE
        if cond_consts is not None:
            if cur_consts is not None:
                if not (cur_consts & cond_consts):
                    fire = FIRE_NEVER
                elif len(cur_consts) == 1 and len(cond_consts) == 1:
                    fire = FIRE_ALWAYS
            elif current == frozenset({("e", w, 0)}):
                # The word still holds its entry value: the claim fires
                # iff that entry value is one of the condition constants
                # — decidable per switch by the reachability fixpoint.
                fire = FIRE_ENTRY
        self.claims.append(SRAMClaimEffect(
            index=j, word=w, fire=fire, conds=conds, srcs=srcs))
        if fire == FIRE_NEVER:
            return
        fired = src_v
        if fire == FIRE_ALWAYS and not self.conditional:
            self.set_sram(w, fired)
        else:
            self.set_sram(w, _join(current, fired))


def analyze_relations(instructions: Sequence[Instruction], *,
                      mode: Any = None,
                      word_size: int = 4,
                      memory_len: int = 0,
                      perhop_len_bytes: int = 0,
                      initial_memory: Optional[bytes] = None,
                      entry: Optional[int] = 0,
                      memory_map: Optional[MemoryMap] = None,
                      ) -> RelationalSummary:
    """Relationally analyze one program.

    ``entry`` pins the hop/SP counter executions enter with at the
    deployment point under analysis (``build()`` stamps new programs
    with ``0``); ``None`` quantifies over the whole interval, which
    degrades PUSH/POP and hop-relative slot tracking to unknown but
    never produces an unsound fact.  Without an ``initial_memory`` image
    nothing is provable and the summary is empty.
    """
    if initial_memory is None or not instructions:
        return RelationalSummary()
    resolved_mode = AddressingMode.STACK if mode is None else mode
    from repro.core.racecheck import STABLE_FENCE_REGISTERS
    resolver = (memory_map if memory_map is not None
                else MemoryMap.shared_standard())
    stable: Set[int] = set()
    for name in STABLE_FENCE_REGISTERS:
        try:
            stable.add(resolver.resolve(name))
        except KeyError:  # pragma: no cover - custom maps may omit it
            continue
    walker = _Walker(
        instructions, mode=resolved_mode, word_size=word_size,
        memory_len=memory_len or len(initial_memory),
        perhop_len_bytes=perhop_len_bytes,
        initial_memory=bytes(initial_memory), entry=entry,
        stable_addrs=frozenset(stable))
    walker.run()
    # Everything still sitting in a packet slot at program end is part
    # of the final packet memory — observable.
    for base, taint in walker.taints.items():
        if walker.slots.get(base) is not None or taint:
            walker.live.update(taint)
    dead_reads = tuple(sorted(
        j for j in walker.read_indices if ("r", j) not in walker.live))
    dead_claim_obs = tuple(sorted(
        j for j in walker.claim_obs if ("co", j) not in walker.live))
    return RelationalSummary(
        writes=tuple(walker.writes),
        claims=tuple(walker.claims),
        dead_reads=dead_reads,
        dead_claim_obs=dead_claim_obs,
        dead_suffix_at=walker.dead_suffix_at,
        const_cexecs=tuple(walker.const_cexecs),
        stable_fences=tuple(walker.stable_fences),
    )


# ------------------------------------------------------------------ #
# Fleet-level claim-epoch reachability
# ------------------------------------------------------------------ #

#: Reachable-value table: ``(task_id, word) -> values`` with ``None``
#: meaning top (any value).
ReachTable = Dict[Tuple[int, int], Optional[FrozenSet[int]]]


def _concretize(atoms: Optional[Tuple[Atom, ...]], task_id: int,
                reach: ReachTable, mask: int,
                ) -> Optional[FrozenSet[int]]:
    """Ground an atom tuple against the current reachable sets."""
    if atoms is None:
        return None
    out: Set[int] = set()
    for atom in atoms:
        if atom[0] == "c":
            out.add(atom[1] & mask)
        else:
            src = reach.get((task_id, atom[1]))
            if src is None:
                return None
            for r in src:
                out.add((r + atom[2]) & mask)
        if len(out) > MAX_REACH:
            return None
    return frozenset(out)


def reachable_values(
        members: Sequence[Tuple[Any, Optional[RelationalSummary]]],
        sram_values: Optional[Mapping[int, int]],
        word_size: int = 4,
        floor: Optional[ReachTable] = None) -> ReachTable:
    """Fixpoint over a fleet: every value each word can ever hold.

    ``members`` pairs each :class:`~repro.core.racecheck.
    ProgramAccessSummary` with its relational summary (``None`` = no
    relational facts: all its writes poison their words).  ``sram_values``
    maps absolute SRAM word indices to the switch's initial image; words
    not bound (or with no binding at all) start at top.  The result
    over-approximates: every write adds every value it could store, a
    claim contributes its stored value whenever its fire condition
    intersects the current set, and widening only ever grows sets.

    ``floor`` seeds words with values already reachable before this
    call — an incremental table passes its previous table so values a
    since-revoked member may have left in physical SRAM are never
    forgotten (reachability is monotone over membership *history*, not
    just current membership).
    """
    mask = (1 << (8 * word_size)) - 1
    reach: ReachTable = {}
    for summary, _ in members:
        for word in summary.words:
            key = (summary.task_id, word)
            if key not in reach:
                if sram_values is not None and word in sram_values:
                    reach[key] = frozenset(
                        {sram_values[word] & mask})
                else:
                    reach[key] = None
    if floor:
        for key, values in floor.items():
            if key not in reach:
                reach[key] = values
            elif values is None:
                reach[key] = None
            elif reach[key] is not None:
                merged = reach[key] | values  # type: ignore[operator]
                reach[key] = (frozenset(merged)
                              if len(merged) <= MAX_REACH else None)
    changed = True
    while changed:
        changed = False
        for summary, relational in members:
            task = summary.task_id
            for word, indices in summary.writes.items():
                key = (task, word)
                if reach.get(key) is None:
                    continue
                for index in indices:
                    effect = (relational.write_at(index)
                              if relational is not None else None)
                    if effect is None:
                        added: Optional[FrozenSet[int]] = None
                    elif effect.inert:
                        continue
                    else:
                        added = _concretize(effect.atoms, task, reach,
                                            mask)
                    changed |= _grow(reach, key, added)
            for word, indices in summary.claims.items():
                key = (task, word)
                current = reach.get(key)
                if current is None:
                    continue
                for index in indices:
                    effect = (relational.claim_at(index)
                              if relational is not None else None)
                    if effect is None:
                        changed |= _grow(reach, key, None)
                        continue
                    if effect.fire == FIRE_NEVER:
                        continue
                    if effect.fire == FIRE_ENTRY:
                        conds = _concretize(effect.conds, task, reach,
                                            mask)
                        if conds is not None and not (conds & current):
                            continue  # no reachable epoch matches
                    added = _concretize(effect.srcs, task, reach, mask)
                    changed |= _grow(reach, key, added)
    return reach


def _grow(reach: ReachTable, key: Tuple[int, int],
          added: Optional[FrozenSet[int]]) -> bool:
    current = reach.get(key)
    if current is None:
        return False
    if added is None:
        reach[key] = None
        return True
    merged = current | added
    if len(merged) > MAX_REACH:
        reach[key] = None
        return True
    if merged != current:
        reach[key] = frozenset(merged)
        return True
    return False


def claim_can_fire(effect: SRAMClaimEffect, task_id: int,
                   reach: ReachTable, mask: int) -> bool:
    """Whether a claim can fire given the word's reachable epochs."""
    if effect.fire == FIRE_NEVER:
        return False
    if effect.fire != FIRE_ENTRY:
        return True
    current = reach.get((task_id, effect.word))
    if current is None:
        return True
    conds = _concretize(effect.conds, task_id, reach, mask)
    if conds is None:
        return True
    return bool(conds & current)


def claim_mutates(effect: SRAMClaimEffect, task_id: int,
                  reach: ReachTable, mask: int) -> bool:
    """Whether a firing claim can ever *change* the word.

    ``CSTORE w, c, c`` stores the value it matched: the word is
    untouched and only the (read-like) write-back observes anything.
    """
    if not claim_can_fire(effect, task_id, reach, mask):
        return False
    conds = _concretize(effect.conds, task_id, reach, mask)
    srcs = _concretize(effect.srcs, task_id, reach, mask)
    if conds is not None and srcs is not None \
            and len(conds) == 1 and conds == srcs:
        return False
    return True


def write_mutates(effect: SRAMWriteEffect, task_id: int,
                  reach: ReachTable, mask: int) -> bool:
    """Whether an unconditional store can ever change its word."""
    if effect.inert:
        return False
    values = _concretize(effect.atoms, task_id, reach, mask)
    current = reach.get((task_id, effect.word))
    if values is not None and current is not None \
            and len(current) == 1 and values <= current:
        return False
    return True
