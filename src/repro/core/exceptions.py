"""Errors raised by the TPP core."""

from __future__ import annotations

import enum

from repro.errors import ReproError, WireFormatError


class TPPError(ReproError):
    """Base class for TPP-specific errors."""


class AssemblerError(TPPError):
    """The assembly source could not be compiled."""

    def __init__(self, message: str, line_number: int = 0,
                 line: str = "") -> None:
        if line_number:
            message = f"line {line_number}: {message} ({line.strip()!r})"
        super().__init__(message)
        self.line_number = line_number
        self.line = line


class TPPEncodingError(WireFormatError, TPPError):
    """Bytes could not be parsed as a TPP section."""


class FaultCode(enum.IntEnum):
    """Why a TCPU stopped executing a TPP on a switch.

    The code is stamped into the TPP header's flags field so the end-host
    that receives the packet can see where and why execution failed —
    faults travel with the packet, they do not crash the switch.
    """

    NONE = 0
    BAD_ADDRESS = 1          # virtual address not mapped on this switch
    WRITE_PROTECTED = 2      # STORE/CSTORE to a read-only statistic
    MEMORY_BOUNDS = 3        # packet-memory access outside the TPP
    STACK_OVERFLOW = 4       # PUSH past the end of packet memory
    STACK_UNDERFLOW = 5      # POP with an empty stack
    TOO_MANY_INSTRUCTIONS = 6  # program exceeds the switch's per-TPP limit
    SRAM_PROTECTION = 7      # SRAM access outside the task's allocation
    BAD_INSTRUCTION = 8      # unknown opcode


class TCPUFault(TPPError):
    """Internal signal used by the TCPU while executing one instruction.

    Never escapes :meth:`repro.core.tcpu.TCPU.execute`; it is converted into
    a fault code in the execution report and the TPP flags.
    """

    def __init__(self, code: FaultCode, message: str) -> None:
        super().__init__(f"{code.name}: {message}")
        self.code = code
