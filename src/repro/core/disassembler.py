"""Disassembler: encoded instructions back to readable assembly.

Round-trips with :mod:`repro.core.assembler` up to operand spelling
(raw addresses are printed with their memory-map mnemonics when known).
Used by traces, error messages, and the Figure-1 style execution
visualizations in the examples.
"""

from __future__ import annotations

from typing import Iterable, List, Optional

from repro.core.isa import Instruction, Opcode, PAIR_OPERAND_OPCODES
from repro.core.memory_map import MemoryMap
from repro.core.tpp import TPPSection


def disassemble_instruction(instruction: Instruction,
                            memory_map: Optional[MemoryMap] = None) -> str:
    """One instruction as assembly text."""
    if memory_map is None:
        memory_map = MemoryMap.standard()
    opcode = instruction.opcode
    switch = f"[{memory_map.name_of(instruction.addr)}]"
    packet = f"[Packet:{instruction.offset}]"

    if opcode == Opcode.NOP:
        return "NOP"
    if opcode in (Opcode.PUSH, Opcode.POP):
        return f"{opcode.name} {switch}"
    if opcode in (Opcode.LOAD, Opcode.STORE):
        return f"{opcode.name} {switch}, {packet}"
    if opcode in PAIR_OPERAND_OPCODES:
        pair = (f"[Packet:{instruction.offset}], "
                f"[Packet:{instruction.offset + 1}]")
        return f"{opcode.name} {switch}, {pair}"
    # Arithmetic prints destination (packet) first, as assembled.
    return f"{opcode.name} {packet}, {switch}"


def disassemble(instructions: Iterable[Instruction],
                memory_map: Optional[MemoryMap] = None) -> str:
    """A whole program as newline-separated assembly text."""
    if memory_map is None:
        memory_map = MemoryMap.standard()
    return "\n".join(disassemble_instruction(instruction, memory_map)
                     for instruction in instructions)


def format_tpp(tpp: TPPSection,
               memory_map: Optional[MemoryMap] = None) -> str:
    """Human-readable dump of a TPP section (header, code, memory).

    This is the textual equivalent of the paper's Figure 1 packet
    snapshots.
    """
    if memory_map is None:
        memory_map = MemoryMap.standard()
    lines: List[str] = [
        f"TPP mode={tpp.mode.name} word={tpp.word_size} "
        f"hop/sp={tpp.hop_or_sp:#x} perhop={tpp.perhop_len_bytes}B "
        f"flags={tpp.flags:#04x} task={tpp.task_id} seq={tpp.seq}",
        "instructions:",
    ]
    for instruction in tpp.instructions:
        lines.append(f"  {disassemble_instruction(instruction, memory_map)}")
    lines.append("packet memory:")
    words = tpp.words()
    for index in range(0, len(words), 4):
        chunk = words[index:index + 4]
        rendered = " ".join(f"{word:#010x}" for word in chunk)
        lines.append(f"  [{index * tpp.word_size:#06x}] {rendered}")
    return "\n".join(lines)
