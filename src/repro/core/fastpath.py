"""Compile-once, execute-many TPP execution (the fast path).

The paper's execution model is *tiny and repetitive*: the same
5-instruction program is carried by millions of probes and executed at
every hop ("Millions of Little Minions" makes this execute-many model
explicit — the ASIC decodes a TPP once into its pipeline and then simply
re-runs it).  The interpreter in :mod:`repro.core.tcpu` instead re-decodes
the opcode and re-resolves every memory-mapped address on every single
instruction of every execution.

This module removes that per-execution work in two layers:

- :func:`compile_program` turns a decoded instruction list into a flat
  tuple of specialized per-opcode closures.  Each closure has its operands
  — word size, packet-memory offsets, and the switch's pre-resolved
  getter/setter for the instruction's virtual address (see
  :meth:`repro.core.mmu.MMU.reader_for`) — bound at compile time, so the
  per-hop cost is one Python call per instruction.
- :class:`ProgramCache` is a bounded LRU keyed by the TPP's
  *program key* (the instruction wire bytes plus addressing mode and word
  size, :attr:`repro.core.tpp.TPPSection.program_key`), so a program is
  compiled once per switch and every later execution — of any packet
  carrying the same program — skips decode and address resolution
  entirely.

Compiled closures are bit-compatible with the interpreter: same fault
codes in the same order, same packet-memory bytes, same
:class:`~repro.core.tcpu.ExecutionReport` contents.  The differential
test suite (``tests/core/test_fastpath_differential.py``) runs both paths
side by side on every opcode and fault path to enforce this.
"""

from __future__ import annotations

import struct
from collections import OrderedDict
from typing import Callable, Dict, List, Tuple

from repro.core.exceptions import FaultCode, TCPUFault
from repro.core.isa import HOP_RELATIVE_OPCODES, Instruction, Opcode
from repro.core.mmu import MMU
from repro.core.tpp import AddressingMode

#: One compiled instruction: ``step(tpp, ctx, report) -> enabled`` with the
#: exact raise/return contract of ``TCPU._step``.
Step = Callable[..., bool]

#: Default LRU capacity of a per-TCPU program cache.  An experiment runs a
#: handful of distinct programs (the paper's apps use one or two each), so
#: this is generous; it exists to bound a hostile workload, not to be hit.
DEFAULT_PROGRAM_CACHE_CAPACITY = 128

#: Pre-compiled big-endian codecs per supported word size
#: (``SUPPORTED_WORD_SIZES``).  ``pack_into``/``unpack_from`` write and
#: read packet memory in place — byte-identical to
#: ``int.to_bytes(word, "big")`` on masked values, without the
#: intermediate ``bytes`` object per instruction.
_WORD_STRUCTS = {4: struct.Struct(">I"), 8: struct.Struct(">Q")}

_ARITHMETIC = {
    Opcode.ADD: lambda a, b: a + b,
    Opcode.SUB: lambda a, b: a - b,
    Opcode.AND: lambda a, b: a & b,
    Opcode.OR: lambda a, b: a | b,
    Opcode.XOR: lambda a, b: a ^ b,
    Opcode.MIN: min,
    Opcode.MAX: max,
}


def _bounds_message(byte_offset: int, memory_len: int) -> str:
    """The exact message ``TPPSection._check_bounds`` raises with."""
    return (f"word access at byte {byte_offset} outside packet memory "
            f"of {memory_len} bytes")


class ProgramCache:
    """Bounded LRU of compiled programs with hit/miss accounting.

    Keys are opaque program fingerprints (byte strings).  Two programs of
    the same length but different instruction bytes necessarily have
    different keys, so a collision can only mean byte-identical programs —
    which compile identically.
    """

    __slots__ = ("capacity", "hits", "misses", "evictions",
                 "invalidations", "_entries")

    def __init__(self,
                 capacity: int = DEFAULT_PROGRAM_CACHE_CAPACITY) -> None:
        if capacity < 1:
            raise ValueError(f"cache capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0
        self._entries: "OrderedDict[bytes, Tuple[Step, ...]]" = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: bytes) -> bool:
        return key in self._entries

    def get(self, key: bytes):
        """Compiled steps for ``key``, or ``None`` (counts hit/miss)."""
        entries = self._entries
        steps = entries.get(key)
        if steps is None:
            self.misses += 1
            return None
        entries.move_to_end(key)
        self.hits += 1
        return steps

    def put(self, key: bytes, steps: Tuple[Step, ...]) -> None:
        """Insert (or refresh) an entry, evicting the LRU past capacity."""
        entries = self._entries
        if key in entries:
            entries.move_to_end(key)
        entries[key] = steps
        if len(entries) > self.capacity:
            entries.popitem(last=False)
            self.evictions += 1

    def clear(self) -> None:
        """Drop every entry (switch address-space layout changed)."""
        if self._entries:
            self._entries.clear()
        self.invalidations += 1

    def stats(self) -> Dict[str, int]:
        """Counter snapshot for reporting."""
        return {
            "size": len(self._entries),
            "capacity": self.capacity,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "invalidations": self.invalidations,
        }


def compile_program(instructions: List[Instruction], mode: AddressingMode,
                    word_size: int, mmu: MMU) -> Tuple[Step, ...]:
    """Compile a program into per-opcode closures bound to one MMU.

    The result is valid until the MMU's address-space layout changes
    (:attr:`repro.core.mmu.MMU.layout_version`); the TCPU clears its
    program cache when it observes a version bump.
    """
    hop_mode = mode == AddressingMode.HOP
    return tuple(
        _compile_instruction(instruction, hop_mode, word_size, mmu)
        for instruction in instructions)


def _compile_instruction(instruction: Instruction, hop_mode: bool,
                         word: int, mmu: MMU) -> Step:
    opcode = instruction.opcode
    addr = instruction.addr
    offset_bytes = instruction.offset * word
    mask = (1 << (8 * word)) - 1
    hop_relative = hop_mode and opcode in HOP_RELATIVE_OPCODES
    codec = _WORD_STRUCTS[word]
    pack_into = codec.pack_into
    unpack_from = codec.unpack_from

    if opcode == Opcode.NOP:
        return _step_nop

    if opcode == Opcode.PUSH:
        read = mmu.reader_for(addr)

        def step_push(tpp, ctx, report) -> bool:
            value = read(ctx)
            sp = tpp.hop_or_sp
            memory = tpp.memory
            if sp + word > len(memory):
                raise TCPUFault(
                    FaultCode.STACK_OVERFLOW,
                    f"PUSH at SP={sp} past {len(memory)} bytes")
            pack_into(memory, sp, value & mask)
            tpp.hop_or_sp = sp + word
            tpp._wire_cache = None
            return True

        return step_push

    if opcode == Opcode.POP:
        write = mmu.writer_for(addr)

        def step_pop(tpp, ctx, report) -> bool:
            sp = tpp.hop_or_sp
            if sp < word:
                raise TCPUFault(FaultCode.STACK_UNDERFLOW,
                                f"POP with SP={sp}")
            sp -= word
            tpp.hop_or_sp = sp
            tpp._wire_cache = None
            memory = tpp.memory
            if sp + word > len(memory):
                raise IndexError(_bounds_message(sp, len(memory)))
            value = unpack_from(memory, sp)[0]
            write(ctx, value)
            report.switch_writes.append((addr, value))
            return True

        return step_pop

    if opcode == Opcode.LOAD:
        read = mmu.reader_for(addr)

        def step_load(tpp, ctx, report) -> bool:
            value = read(ctx)
            if hop_relative:
                ea = tpp.hop_or_sp * tpp.perhop_len_bytes + offset_bytes
            else:
                ea = offset_bytes
            memory = tpp.memory
            if ea + word > len(memory):
                raise IndexError(_bounds_message(ea, len(memory)))
            pack_into(memory, ea, value & mask)
            tpp._wire_cache = None
            return True

        return step_load

    if opcode == Opcode.STORE:
        write = mmu.writer_for(addr)

        def step_store(tpp, ctx, report) -> bool:
            if hop_relative:
                ea = tpp.hop_or_sp * tpp.perhop_len_bytes + offset_bytes
            else:
                ea = offset_bytes
            memory = tpp.memory
            if ea + word > len(memory):
                raise IndexError(_bounds_message(ea, len(memory)))
            value = unpack_from(memory, ea)[0]
            write(ctx, value)
            report.switch_writes.append((addr, value))
            return True

        return step_store

    if opcode == Opcode.CSTORE:
        # CSTORE dst, cond, src — conditional operands use absolute word
        # offsets even in hop mode (see repro.core.isa module docs).
        read = mmu.reader_for(addr)
        write = mmu.writer_for(addr)
        cond_offset = offset_bytes
        src_offset = cond_offset + word

        def step_cstore(tpp, ctx, report) -> bool:
            memory = tpp.memory
            n = len(memory)
            if cond_offset + word > n:
                raise IndexError(_bounds_message(cond_offset, n))
            cond = unpack_from(memory, cond_offset)[0]
            if src_offset + word > n:
                raise IndexError(_bounds_message(src_offset, n))
            src = unpack_from(memory, src_offset)[0]
            old = read(ctx)
            pack_into(memory, cond_offset, old & mask)
            tpp._wire_cache = None
            if old == cond:
                write(ctx, src)
                report.switch_writes.append((addr, src))
            return True

        return step_cstore

    if opcode == Opcode.CEXEC:
        read = mmu.reader_for(addr)
        mask_offset = offset_bytes
        value_offset = mask_offset + word

        def step_cexec(tpp, ctx, report) -> bool:
            memory = tpp.memory
            n = len(memory)
            if mask_offset + word > n:
                raise IndexError(_bounds_message(mask_offset, n))
            mask_value = unpack_from(memory, mask_offset)[0]
            if value_offset + word > n:
                raise IndexError(_bounds_message(value_offset, n))
            expected = unpack_from(memory, value_offset)[0]
            register = read(ctx)
            return (register & mask_value) == expected

        return step_cexec

    operation = _ARITHMETIC.get(opcode)
    if operation is not None:
        read = mmu.reader_for(addr)

        def step_arithmetic(tpp, ctx, report) -> bool:
            if hop_relative:
                ea = tpp.hop_or_sp * tpp.perhop_len_bytes + offset_bytes
            else:
                ea = offset_bytes
            memory = tpp.memory
            if ea + word > len(memory):
                raise IndexError(_bounds_message(ea, len(memory)))
            current = unpack_from(memory, ea)[0]
            operand = read(ctx)
            pack_into(memory, ea, operation(current, operand) & mask)
            tpp._wire_cache = None
            return True

        return step_arithmetic

    def step_bad(tpp, ctx, report) -> bool:
        raise TCPUFault(FaultCode.BAD_INSTRUCTION,
                        f"opcode {opcode!r} not implemented")

    return step_bad


def _step_nop(tpp, ctx, report) -> bool:
    return True
