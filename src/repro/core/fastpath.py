"""Compile-once, execute-many TPP execution (the fast path).

The paper's execution model is *tiny and repetitive*: the same
5-instruction program is carried by millions of probes and executed at
every hop ("Millions of Little Minions" makes this execute-many model
explicit — the ASIC decodes a TPP once into its pipeline and then simply
re-runs it).  The interpreter in :mod:`repro.core.tcpu` instead re-decodes
the opcode and re-resolves every memory-mapped address on every single
instruction of every execution.

This module removes that per-execution work in two layers:

- :func:`compile_program` turns a decoded instruction list into a flat
  tuple of specialized per-opcode closures.  Each closure has its operands
  — word size, packet-memory offsets, and the switch's pre-resolved
  getter/setter for the instruction's virtual address (see
  :meth:`repro.core.mmu.MMU.reader_for`) — bound at compile time, so the
  per-hop cost is one Python call per instruction.
- :class:`ProgramCache` is a bounded LRU keyed by the TPP's
  *program key* (the instruction wire bytes plus addressing mode and word
  size, :attr:`repro.core.tpp.TPPSection.program_key`), so a program is
  compiled once per switch and every later execution — of any packet
  carrying the same program — skips decode and address resolution
  entirely.

Compiled closures are bit-compatible with the interpreter: same fault
codes in the same order, same packet-memory bytes, same
:class:`~repro.core.tcpu.ExecutionReport` contents.  The differential
test suite (``tests/core/test_fastpath_differential.py``) runs both paths
side by side on every opcode and fault path to enforce this.

The static verifier (:mod:`repro.core.verifier`) adds a third layer on
top: :func:`compile_program` called with a
:class:`~repro.core.verifier.VerifiedProgram` certificate emits *elided*
closures with the per-instruction packet-memory bounds and stack
over/underflow checks removed — the certificate proved them dead.  The
TCPU stores both variants in a :class:`CompiledEntry` and re-checks the
certificate's per-execution guard (memory length, per-hop stride,
hop/SP-counter interval) before each execution, falling back to the
checked closures whenever the guard fails, so behaviour stays
bit-identical even for corrupted or replayed sections.  Switch-side
protection (unmapped addresses, read-only statistics, SRAM domains) is
never elided: those checks live inside the MMU accessors and depend on
per-switch state the verifier cannot see.
"""

from __future__ import annotations

import struct
from collections import OrderedDict
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.core.exceptions import FaultCode, TCPUFault
from repro.core.isa import HOP_RELATIVE_OPCODES, Instruction, Opcode
from repro.core.memory_map import is_link_scratch, is_sram
from repro.core.mmu import MMU
from repro.core.racecheck import DATAFLOW_ACCUMULATE, analyze_sram_dataflow
from repro.core.tpp import AddressingMode

#: One compiled instruction: ``step(tpp, ctx, report) -> enabled`` with the
#: exact raise/return contract of ``TCPU._step``.
Step = Callable[..., bool]

#: Default LRU capacity of a per-TCPU program cache.  An experiment runs a
#: handful of distinct programs (the paper's apps use one or two each), so
#: this is generous; it exists to bound a hostile workload, not to be hit.
DEFAULT_PROGRAM_CACHE_CAPACITY = 128

#: Pre-compiled big-endian codecs per supported word size
#: (``SUPPORTED_WORD_SIZES``).  ``pack_into``/``unpack_from`` write and
#: read packet memory in place — byte-identical to
#: ``int.to_bytes(word, "big")`` on masked values, without the
#: intermediate ``bytes`` object per instruction.
_WORD_STRUCTS = {4: struct.Struct(">I"), 8: struct.Struct(">Q")}

_ARITHMETIC = {
    Opcode.ADD: lambda a, b: a + b,
    Opcode.SUB: lambda a, b: a - b,
    Opcode.AND: lambda a, b: a & b,
    Opcode.OR: lambda a, b: a | b,
    Opcode.XOR: lambda a, b: a ^ b,
    Opcode.MIN: min,
    Opcode.MAX: max,
}


def _bounds_message(byte_offset: int, memory_len: int) -> str:
    """The exact message ``TPPSection._check_bounds`` raises with."""
    return (f"word access at byte {byte_offset} outside packet memory "
            f"of {memory_len} bytes")


class CompiledEntry:
    """One cached compilation unit of a program on one switch.

    Always carries the fully-checked closures; when the TCPU holds a
    verifier certificate for the program it also carries the elided
    closures plus the certificate's per-execution guard facts, inlined
    here so the execute hot path touches one object.  ``verified_steps``
    may only be used for an execution whose section matches
    ``memory_len``/``perhop_len_bytes`` exactly and whose hop/SP counter
    lies in ``[guard_lo, guard_hi]`` — the TCPU checks this per
    execution and otherwise runs ``steps``.

    ``batch_plan`` (attached by the TCPU for certified programs) carries
    the batch-shape facts :mod:`repro.core.batch` needs to decide per
    batch whether the vectorized kernel may run; ``None`` means the
    program was never analysed (no certificate) and batches of it always
    take the safe packet-at-a-time lane.
    """

    __slots__ = ("steps", "verified_steps", "guard_lo", "guard_hi",
                 "memory_len", "perhop_len_bytes", "has_cexec",
                 "batch_plan")

    def __init__(self, steps: Tuple[Step, ...],
                 verified_steps: Optional[Tuple[Step, ...]] = None,
                 certificate: Any = None) -> None:
        self.steps = steps
        self.verified_steps = verified_steps
        self.batch_plan: Optional[BatchPlan] = None
        if certificate is not None:
            self.guard_lo: int = certificate.guard_lo
            self.guard_hi: int = certificate.guard_hi
            self.memory_len: int = certificate.memory_len
            self.perhop_len_bytes: int = certificate.perhop_len_bytes
            self.has_cexec: bool = certificate.has_cexec
        else:
            # An empty guard interval: the verified path can never match.
            self.guard_lo, self.guard_hi = 0, -1
            self.memory_len = -1
            self.perhop_len_bytes = -1
            self.has_cexec = True


#: Opcodes the vectorized batch kernel understands.  Everything here is
#: free of MMU writes and of control flow: reorderable across packets of
#: a batch without any observable difference.
_VECTOR_OPCODES = frozenset((
    Opcode.NOP, Opcode.PUSH, Opcode.LOAD, Opcode.ADD, Opcode.SUB,
    Opcode.AND, Opcode.OR, Opcode.XOR, Opcode.MIN, Opcode.MAX,
))

#: Opcodes that write switch state through the MMU.
_MMU_WRITE_OPCODES = frozenset((Opcode.POP, Opcode.STORE, Opcode.CSTORE))


class BatchPlan:
    """Batch-shape facts about one compiled program.

    Built once per compilation (certified programs only) by
    :func:`build_batch_plan` and attached to the program's
    :class:`CompiledEntry`.  ``ops`` is the instruction list lowered to
    the vectorized kernel's micro-ops (``None`` when any instruction is
    outside the kernel's vocabulary):

    - ``("nop",)``
    - ``("push", reader)`` — effective address is the running SP
    - ``("load", reader, hop_relative, offset_bytes)``
    - ``("arith", opcode, reader, hop_relative, offset_bytes)``

    Write-bearing instructions lower against the certificate's SRAM
    dataflow classes (:func:`repro.core.racecheck.analyze_sram_dataflow`)
    into the write-lane micro-ops:

    - ``("push_acc", word)`` / ``("load_acc", word, hop_relative,
      offset_bytes)`` / ``("add_acc", word, hop_relative, offset_bytes)``
      — reads of an *accumulate* word, served from the kernel's
      per-word partial-delta vector instead of the (stale during the
      batch) MMU store
    - ``("store_acc", word, hop_relative, offset_bytes, vaddr)`` /
      ``("pop_acc", word, vaddr)`` — stores closing an additive chain
    - ``("store_priv", word, hop_relative, offset_bytes, vaddr)`` /
      ``("pop_priv", word, vaddr)`` — last-writer-wins scatters
    - ``("cstore_claim", word, cond_offset_bytes, vaddr)`` — the
      first-match-wins claim select

    A certified program whose certificate carries a relationally-dead
    suffix (:attr:`repro.core.verifier.VerifiedProgram.sram_relational`
    with ``dead_suffix_at`` set — every instruction past that CEXEC is
    provably unreachable for any in-guard execution) lowers its live
    prefix only, with the fence itself as

    - ``("cexec_dead", reader)`` — the per-packet register read of a
      CEXEC that provably always disables (reproduces reader faults
      bit-for-bit; the value is discarded)

    and ``cexec_disabled_at`` records the fence index so the kernel
    stamps ``executed``/``skipped``/``cexec_disabled_at`` exactly as the
    scalar loop would.  This retires the ``"cexec"`` (and dead-write
    ``"write_dataflow"``) demotions for programs whose only
    non-vectorizable instructions sit behind a dead fence.

    ``vectorizable`` additionally requires every read to be
    *batch-stable* (:meth:`repro.core.mmu.MMU.reader_is_batch_stable`):
    side-effect-free and unchanged by the TPP executions within one
    batch, so instruction-major execution order is unobservable.
    ``demote_reason`` names why the lowering refused (``"cexec"`` or
    ``"write_dataflow"``) for the batch engine's per-reason demotion
    counters; ``sram_words``/``acc_words``/``aff_slots`` carry the
    write-lane kernel state the micro-ops reference.
    """

    __slots__ = ("ops", "vectorizable", "writes_mmu", "stable_reads",
                 "uses_task_id", "touches_memory", "n_instructions",
                 "demote_reason", "sram_words", "acc_words", "aff_slots",
                 "cexec_disabled_at")

    def __init__(self, ops: Optional[Tuple[Tuple[Any, ...], ...]],
                 vectorizable: bool, writes_mmu: bool, stable_reads: bool,
                 uses_task_id: bool, touches_memory: bool,
                 n_instructions: int,
                 demote_reason: Optional[str] = None,
                 sram_words: Tuple[int, ...] = (),
                 acc_words: Tuple[int, ...] = (),
                 aff_slots: Tuple[Tuple[str, int, int], ...] = (),
                 cexec_disabled_at: Optional[int] = None) -> None:
        self.ops = ops
        self.vectorizable = vectorizable
        self.writes_mmu = writes_mmu
        self.stable_reads = stable_reads
        self.uses_task_id = uses_task_id
        self.touches_memory = touches_memory
        self.n_instructions = n_instructions
        self.demote_reason = demote_reason
        self.sram_words = sram_words
        self.acc_words = acc_words
        self.aff_slots = aff_slots
        self.cexec_disabled_at = cexec_disabled_at


def build_batch_plan(instructions: List[Instruction],
                     mode: AddressingMode, word_size: int,
                     mmu: MMU, certificate: Any = None) -> BatchPlan:
    """Lower a program to the vectorized kernel's micro-ops (if possible).

    Valid for the same lifetime as the compiled closures: a
    ``layout_version`` bump (which can change which readers are
    batch-stable) clears the program cache, and the plan is rebuilt with
    the entry.

    Write-bearing programs additionally need ``certificate`` — its
    pinned ``sram_dataflow`` must match this lowering's own analysis
    exactly (a stale or foreign certificate demotes instead of
    mis-vectorizing), every write target must be a *batch-stable writer*
    (:meth:`repro.core.mmu.MMU.writer_is_batch_stable`, i.e. scratch
    SRAM), and every written word must classify as accumulate, claim or
    private-scatter.
    """
    hop_mode = mode == AddressingMode.HOP
    ops: List[Tuple[Any, ...]] = []
    vector_ok = True
    demote_reason: Optional[str] = None
    stable = True
    uses_task_id = False
    touches_memory = False
    # Relationally-dead suffix: instructions past the certificate's
    # always-false CEXEC can never execute in-guard, so they cannot
    # demote the plan — the live prefix lowers alone, with the fence
    # itself as a ``cexec_dead`` register read.  Only taken when the
    # prefix is write-free: a write-bearing prefix would need its
    # dataflow classes re-derived over the truncated program, which the
    # certificate does not pin.
    relational = (getattr(certificate, "sram_relational", None)
                  if certificate is not None else None)
    dead_at = (relational.dead_suffix_at if relational is not None
               else None)
    cexec_disabled_at: Optional[int] = None
    lowered = instructions
    if (dead_at is not None and dead_at < len(instructions)
            and instructions[dead_at].opcode == Opcode.CEXEC
            and not any(i.opcode in _MMU_WRITE_OPCODES
                        for i in instructions[:dead_at])):
        fence = instructions[dead_at]
        if not mmu.reader_is_batch_stable(fence.addr):
            stable = False
        if is_sram(fence.addr) or is_link_scratch(fence.addr):
            uses_task_id = True
        lowered = instructions[:dead_at]
        cexec_disabled_at = dead_at
    writes_mmu = any(i.opcode in _MMU_WRITE_OPCODES for i in lowered)
    roles: Tuple[Any, ...] = (None,) * len(lowered)
    acc_written: set = set()
    analysis = None
    if writes_mmu:
        analysis = analyze_sram_dataflow(instructions, mode=mode,
                                         word_size=word_size)
        pinned = (getattr(certificate, "sram_dataflow", None)
                  if certificate is not None else None)
        if analysis.ok and pinned == analysis.classes:
            roles = analysis.roles
        else:
            analysis = None
    for j, instruction in enumerate(lowered):
        opcode = instruction.opcode
        role = roles[j]
        if opcode not in _VECTOR_OPCODES and role is None:
            # CEXEC, or a write whose dataflow class does not vectorize
            # (mixed word, non-SRAM target, stale certificate).
            vector_ok = False
            if opcode == Opcode.CEXEC:
                demote_reason = "cexec"
            elif demote_reason is None:
                demote_reason = "write_dataflow"
            continue
        if opcode == Opcode.NOP:
            ops.append(("nop",))
            continue
        addr = instruction.addr
        offset_bytes = instruction.offset * word_size
        hop_relative = hop_mode and opcode in HOP_RELATIVE_OPCODES
        if role is not None:
            tag, sram_word = role
            # Every write-lane op touches SRAM: protection resolves
            # against the (uniform) task id, checked by the kernel.
            uses_task_id = True
            if (tag in ("store_acc", "store_priv", "cstore_claim")
                    and not mmu.writer_is_batch_stable(addr)):
                vector_ok = False
                if demote_reason is None:
                    demote_reason = "write_dataflow"
                continue
            if tag == "read_acc":
                touches_memory = True
                if opcode == Opcode.PUSH:
                    ops.append(("push_acc", sram_word))
                else:
                    ops.append(("load_acc", sram_word, hop_relative,
                                offset_bytes))
            elif tag == "add_acc":
                touches_memory = True
                # Before the word's first store the kernel's delta
                # vector is identically zero, and the matrix column
                # holds values *relative* to the entry value — adding
                # zero is a no-op, so the op is elided (the slot still
                # gets its entry-vector fixup from ``aff_slots``).
                if sram_word in acc_written:
                    ops.append(("add_acc", sram_word, hop_relative,
                                offset_bytes))
            elif tag == "store_acc":
                acc_written.add(sram_word)
                if opcode == Opcode.POP:
                    ops.append(("pop_acc", sram_word, addr))
                else:
                    ops.append(("store_acc", sram_word, hop_relative,
                                offset_bytes, addr))
            elif tag == "store_priv":
                if opcode == Opcode.POP:
                    ops.append(("pop_priv", sram_word, addr))
                else:
                    ops.append(("store_priv", sram_word, hop_relative,
                                offset_bytes, addr))
            else:  # cstore_claim: writes the old value over its cond word
                touches_memory = True
                ops.append(("cstore_claim", sram_word, offset_bytes,
                            addr))
            continue
        if not mmu.reader_is_batch_stable(addr):
            stable = False
        if is_sram(addr) or is_link_scratch(addr):
            # SRAM protection domains resolve against ``ctx.task_id``,
            # so the kernel must stamp it per packet before reading.
            uses_task_id = True
        reader = mmu.reader_for(addr)
        touches_memory = True
        if opcode == Opcode.PUSH:
            ops.append(("push", reader))
        elif opcode == Opcode.LOAD:
            ops.append(("load", reader, hop_relative, offset_bytes))
        else:
            ops.append(("arith", opcode, reader, hop_relative,
                        offset_bytes))
    if cexec_disabled_at is not None and vector_ok:
        # The fence executes (its register read can fault per packet)
        # and then provably disables everything after it.
        ops.append(("cexec_dead",
                    mmu.reader_for(instructions[cexec_disabled_at].addr)))
    sram_words: Tuple[int, ...] = ()
    acc_words: Tuple[int, ...] = ()
    aff_slots: Tuple[Tuple[str, int, int], ...] = ()
    if analysis is not None and vector_ok:
        sram_words = tuple(sorted(w for w, _ in analysis.classes))
        acc_words = tuple(sorted(
            w for w, cls in analysis.classes
            if cls == DATAFLOW_ACCUMULATE))
        aff_slots = analysis.aff_slots
    return BatchPlan(
        ops=tuple(ops) if vector_ok else None,
        vectorizable=vector_ok and stable,
        writes_mmu=writes_mmu,
        stable_reads=stable,
        uses_task_id=uses_task_id,
        touches_memory=touches_memory,
        n_instructions=len(instructions),
        demote_reason=demote_reason,
        sram_words=sram_words,
        acc_words=acc_words,
        aff_slots=aff_slots,
        cexec_disabled_at=cexec_disabled_at,
    )


class ProgramCache:
    """Bounded LRU of compiled programs with hit/miss accounting.

    Keys are opaque program fingerprints (byte strings).  Two programs of
    the same length but different instruction bytes necessarily have
    different keys, so a collision can only mean byte-identical programs —
    which compile identically.
    """

    __slots__ = ("capacity", "hits", "misses", "evictions",
                 "invalidations", "_entries")

    def __init__(self,
                 capacity: int = DEFAULT_PROGRAM_CACHE_CAPACITY) -> None:
        if capacity < 1:
            raise ValueError(f"cache capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0
        self._entries: "OrderedDict[bytes, Any]" = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: bytes) -> bool:
        return key in self._entries

    def get(self, key: bytes) -> Any:
        """Compiled entry for ``key``, or ``None`` (counts hit/miss)."""
        entries = self._entries
        entry = entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        entries.move_to_end(key)
        self.hits += 1
        return entry

    def put(self, key: bytes, entry: Any) -> None:
        """Insert (or refresh) an entry, evicting the LRU past capacity."""
        entries = self._entries
        if key in entries:
            entries.move_to_end(key)
        entries[key] = entry
        if len(entries) > self.capacity:
            entries.popitem(last=False)
            self.evictions += 1

    def discard(self, key: bytes) -> None:
        """Drop one entry without counters (a certificate arrived for the
        program, so it must recompile with the verified closures)."""
        self._entries.pop(key, None)

    def clear(self) -> None:
        """Drop every entry (switch address-space layout changed)."""
        if self._entries:
            self._entries.clear()
        self.invalidations += 1

    def stats(self) -> Dict[str, int]:
        """Counter snapshot for reporting."""
        return {
            "size": len(self._entries),
            "capacity": self.capacity,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "invalidations": self.invalidations,
        }


def compile_program(instructions: List[Instruction], mode: AddressingMode,
                    word_size: int, mmu: MMU,
                    certificate: Any = None) -> Tuple[Step, ...]:
    """Compile a program into per-opcode closures bound to one MMU.

    The result is valid until the MMU's address-space layout changes
    (:attr:`repro.core.mmu.MMU.layout_version`); the TCPU clears its
    program cache when it observes a version bump.

    ``certificate`` (a :class:`repro.core.verifier.VerifiedProgram` for
    exactly this program) elides the per-instruction packet-memory
    bounds and stack over/underflow checks the certificate proved dead.
    The caller owns the per-execution guard: elided closures are only
    safe for sections matching the certificate's memory length and
    per-hop stride whose hop/SP counter is inside
    ``[guard_lo, guard_hi]``.  Switch-side protection faults are raised
    by the MMU accessors either way.
    """
    hop_mode = mode == AddressingMode.HOP
    verified = certificate is not None
    return tuple(
        _compile_instruction(instruction, hop_mode, word_size, mmu,
                             verified)
        for instruction in instructions)


def _compile_instruction(instruction: Instruction, hop_mode: bool,
                         word: int, mmu: MMU,
                         verified: bool = False) -> Step:
    opcode = instruction.opcode
    addr = instruction.addr
    offset_bytes = instruction.offset * word
    mask = (1 << (8 * word)) - 1
    hop_relative = hop_mode and opcode in HOP_RELATIVE_OPCODES
    codec = _WORD_STRUCTS[word]
    pack_into = codec.pack_into
    unpack_from = codec.unpack_from

    if opcode == Opcode.NOP:
        return _step_nop

    if opcode == Opcode.PUSH:
        read = mmu.reader_for(addr)

        if verified:
            def step_push(tpp, ctx, report) -> bool:
                value = read(ctx)
                sp = tpp.hop_or_sp
                pack_into(tpp.memory, sp, value & mask)
                tpp.hop_or_sp = sp + word
                tpp._wire_cache = None
                return True
        else:
            def step_push(tpp, ctx, report) -> bool:
                value = read(ctx)
                sp = tpp.hop_or_sp
                memory = tpp.memory
                if sp + word > len(memory):
                    raise TCPUFault(
                        FaultCode.STACK_OVERFLOW,
                        f"PUSH at SP={sp} past {len(memory)} bytes")
                pack_into(memory, sp, value & mask)
                tpp.hop_or_sp = sp + word
                tpp._wire_cache = None
                return True

        return step_push

    if opcode == Opcode.POP:
        write = mmu.writer_for(addr)

        if verified:
            def step_pop(tpp, ctx, report) -> bool:
                sp = tpp.hop_or_sp - word
                tpp.hop_or_sp = sp
                tpp._wire_cache = None
                value = unpack_from(tpp.memory, sp)[0]
                write(ctx, value)
                report.switch_writes.append((addr, value))
                return True
        else:
            def step_pop(tpp, ctx, report) -> bool:
                sp = tpp.hop_or_sp
                if sp < word:
                    raise TCPUFault(FaultCode.STACK_UNDERFLOW,
                                    f"POP with SP={sp}")
                sp -= word
                tpp.hop_or_sp = sp
                tpp._wire_cache = None
                memory = tpp.memory
                if sp + word > len(memory):
                    raise IndexError(_bounds_message(sp, len(memory)))
                value = unpack_from(memory, sp)[0]
                write(ctx, value)
                report.switch_writes.append((addr, value))
                return True

        return step_pop

    if opcode == Opcode.LOAD:
        read = mmu.reader_for(addr)

        if verified:
            def step_load(tpp, ctx, report) -> bool:
                value = read(ctx)
                if hop_relative:
                    ea = (tpp.hop_or_sp * tpp.perhop_len_bytes
                          + offset_bytes)
                else:
                    ea = offset_bytes
                pack_into(tpp.memory, ea, value & mask)
                tpp._wire_cache = None
                return True
        else:
            def step_load(tpp, ctx, report) -> bool:
                value = read(ctx)
                if hop_relative:
                    ea = (tpp.hop_or_sp * tpp.perhop_len_bytes
                          + offset_bytes)
                else:
                    ea = offset_bytes
                memory = tpp.memory
                if ea + word > len(memory):
                    raise IndexError(_bounds_message(ea, len(memory)))
                pack_into(memory, ea, value & mask)
                tpp._wire_cache = None
                return True

        return step_load

    if opcode == Opcode.STORE:
        write = mmu.writer_for(addr)

        if verified:
            def step_store(tpp, ctx, report) -> bool:
                if hop_relative:
                    ea = (tpp.hop_or_sp * tpp.perhop_len_bytes
                          + offset_bytes)
                else:
                    ea = offset_bytes
                value = unpack_from(tpp.memory, ea)[0]
                write(ctx, value)
                report.switch_writes.append((addr, value))
                return True
        else:
            def step_store(tpp, ctx, report) -> bool:
                if hop_relative:
                    ea = (tpp.hop_or_sp * tpp.perhop_len_bytes
                          + offset_bytes)
                else:
                    ea = offset_bytes
                memory = tpp.memory
                if ea + word > len(memory):
                    raise IndexError(_bounds_message(ea, len(memory)))
                value = unpack_from(memory, ea)[0]
                write(ctx, value)
                report.switch_writes.append((addr, value))
                return True

        return step_store

    if opcode == Opcode.CSTORE:
        # CSTORE dst, cond, src — conditional operands use absolute word
        # offsets even in hop mode (see repro.core.isa module docs).
        read = mmu.reader_for(addr)
        write = mmu.writer_for(addr)
        cond_offset = offset_bytes
        src_offset = cond_offset + word

        if verified:
            def step_cstore(tpp, ctx, report) -> bool:
                memory = tpp.memory
                cond = unpack_from(memory, cond_offset)[0]
                src = unpack_from(memory, src_offset)[0]
                old = read(ctx)
                pack_into(memory, cond_offset, old & mask)
                tpp._wire_cache = None
                if old == cond:
                    write(ctx, src)
                    report.switch_writes.append((addr, src))
                return True
        else:
            def step_cstore(tpp, ctx, report) -> bool:
                memory = tpp.memory
                n = len(memory)
                if cond_offset + word > n:
                    raise IndexError(_bounds_message(cond_offset, n))
                cond = unpack_from(memory, cond_offset)[0]
                if src_offset + word > n:
                    raise IndexError(_bounds_message(src_offset, n))
                src = unpack_from(memory, src_offset)[0]
                old = read(ctx)
                pack_into(memory, cond_offset, old & mask)
                tpp._wire_cache = None
                if old == cond:
                    write(ctx, src)
                    report.switch_writes.append((addr, src))
                return True

        return step_cstore

    if opcode == Opcode.CEXEC:
        read = mmu.reader_for(addr)
        mask_offset = offset_bytes
        value_offset = mask_offset + word

        if verified:
            def step_cexec(tpp, ctx, report) -> bool:
                memory = tpp.memory
                mask_value = unpack_from(memory, mask_offset)[0]
                expected = unpack_from(memory, value_offset)[0]
                register = read(ctx)
                return (register & mask_value) == expected
        else:
            def step_cexec(tpp, ctx, report) -> bool:
                memory = tpp.memory
                n = len(memory)
                if mask_offset + word > n:
                    raise IndexError(_bounds_message(mask_offset, n))
                mask_value = unpack_from(memory, mask_offset)[0]
                if value_offset + word > n:
                    raise IndexError(_bounds_message(value_offset, n))
                expected = unpack_from(memory, value_offset)[0]
                register = read(ctx)
                return (register & mask_value) == expected

        return step_cexec

    operation = _ARITHMETIC.get(opcode)
    if operation is not None:
        read = mmu.reader_for(addr)

        if verified:
            def step_arithmetic(tpp, ctx, report) -> bool:
                if hop_relative:
                    ea = (tpp.hop_or_sp * tpp.perhop_len_bytes
                          + offset_bytes)
                else:
                    ea = offset_bytes
                memory = tpp.memory
                current = unpack_from(memory, ea)[0]
                operand = read(ctx)
                pack_into(memory, ea, operation(current, operand) & mask)
                tpp._wire_cache = None
                return True
        else:
            def step_arithmetic(tpp, ctx, report) -> bool:
                if hop_relative:
                    ea = (tpp.hop_or_sp * tpp.perhop_len_bytes
                          + offset_bytes)
                else:
                    ea = offset_bytes
                memory = tpp.memory
                if ea + word > len(memory):
                    raise IndexError(_bounds_message(ea, len(memory)))
                current = unpack_from(memory, ea)[0]
                operand = read(ctx)
                pack_into(memory, ea, operation(current, operand) & mask)
                tpp._wire_cache = None
                return True

        return step_arithmetic

    def step_bad(tpp, ctx, report) -> bool:
        raise TCPUFault(FaultCode.BAD_INSTRUCTION,
                        f"opcode {opcode!r} not implemented")

    return step_bad


def _step_nop(tpp, ctx, report) -> bool:
    return True
