"""Endpoint aggregation: many logical flows, one admission decision.

The paper's control loops put a prober on every flow.  At fleet scale
(10^5–10^6 logical flows) per-flow admission would dominate the run: the
static verifier and the per-switch race table would re-derive the same
verdict for every flow carrying the same program.  This module amortizes
both:

- :class:`BatchedAdmission` keeps one verdict per *program key* (program
  fingerprint + memory geometry).  The first flow pays for one
  :func:`~repro.core.verifier.verify_program` run; its certificate is
  pushed to every switch's TCPU (:meth:`~repro.core.tcpu.TCPU.trust`) —
  which admits it to each per-switch
  :class:`~repro.core.racecheck.FleetRaceTable` exactly once — and all
  later flows ride the cached verdict.  Certified executions then take
  the verified fast path on every switch.
- :class:`FleetProbeController` is the PeriodicProber generalized across
  lanes: one timer fires every lane's probe at the same instant, so the
  probes reach their shared edge switch in one arrival instant and the
  switch's ingress drain executes them as a single TCPU batch (the
  batched execution engine).  Each physical probe stands for
  ``flows_per_probe`` logical flows — the aggregation that gets a region
  to fleet scale without fleet-sized event counts.
"""

from __future__ import annotations

import zlib
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    List,
    Optional,
    Tuple,
)

from repro.core.assembler import AssembledProgram
from repro.core.memory_map import MemoryMap
from repro.core.tcpu import DEFAULT_MAX_INSTRUCTIONS
from repro.core.verifier import (
    VerificationError,
    VerificationResult,
    verify_program,
)
from repro.sim.timers import PeriodicTimer

#: One record per echoed probe: everything a logical flow's report
#: contains, reduced to hashable primitives for determinism digests.
FlowRecord = Tuple[int, int, int, int]  # (seq, fault, hops, memory crc32)


class BatchedAdmission:
    """One verifier verdict and one race-table admit per program key.

    ``admit(program, flows=N)`` accounts N logical flows against a single
    cached decision.  Rejections raise
    :class:`~repro.core.verifier.VerificationError` for every flow in the
    batch — refusing 10^5 flows costs one analysis too.
    """

    def __init__(self, switches: Iterable[Any],
                 memory_map: Optional[MemoryMap] = None,
                 max_instructions: int = DEFAULT_MAX_INSTRUCTIONS) -> None:
        self.switches = list(switches)
        self.memory_map = memory_map
        self.max_instructions = max_instructions
        self._verdicts: Dict[tuple, VerificationResult] = {}
        self.programs_verified = 0
        self.certificates_installed = 0
        self.flows_admitted = 0
        self.flows_rejected = 0

    @staticmethod
    def _key(program: AssembledProgram) -> tuple:
        # Geometry is part of the key: the same instruction stream with a
        # different memory size has a different verdict (TPP009).
        fingerprint = program._program_key
        if fingerprint is None:
            # First sight of this template: building one throwaway
            # section memoizes the fingerprint on the template itself.
            fingerprint = program.build(seq=0).program_key
        return (fingerprint, len(program.initial_memory),
                program.perhop_len_bytes, program.hops)

    def admit(self, program: AssembledProgram,
              flows: int = 1) -> VerificationResult:
        """Admit ``flows`` logical flows carrying ``program``.

        Returns the (cached) verification result; raises
        :class:`VerificationError` when the program is rejected.
        """
        key = self._key(program)
        result = self._verdicts.get(key)
        if result is None:
            self.programs_verified += 1
            result = verify_program(program, memory_map=self.memory_map,
                                    max_instructions=self.max_instructions)
            self._verdicts[key] = result
            if result.ok and result.certificate is not None:
                # Distributed once per (program, switch); every
                # subsequent execution on these switches takes the
                # verified fast path, and the per-switch race tables see
                # exactly one admit for the whole flow population.
                for switch in self.switches:
                    tcpu = getattr(switch, "tcpu", None)
                    if tcpu is not None and tcpu.trust(result.certificate):
                        self.certificates_installed += 1
        if not result.ok:
            self.flows_rejected += flows
            raise VerificationError(result)
        self.flows_admitted += flows
        return result

    @property
    def verifications_saved(self) -> int:
        """Analyses per-flow admission would have run but this didn't."""
        return (self.flows_admitted + self.flows_rejected
                - self.programs_verified)


class FleetProbeController:
    """One timer driving every probe lane in a region.

    Lanes are ``(endpoint, dst_mac)`` pairs.  Each firing sends one probe
    per lane *in the same simulation instant*; lanes that share an edge
    switch therefore land in one arrival instant and execute as one TCPU
    batch.  Probe programs pass through the endpoint's hop budgeting
    (``TPPEndpoint.budget``) and this controller's
    :class:`BatchedAdmission` before the first send.

    Echo records accumulate per lane in arrival order as
    :data:`FlowRecord` tuples — the raw material for the fleet's
    determinism digests.
    """

    def __init__(self, sim: Any, lanes: Iterable[Tuple[Any, int]],
                 program: AssembledProgram,
                 interval_ns: int, admission: BatchedAdmission,
                 flows_per_probe: int = 1,
                 max_bursts: Optional[int] = None,
                 task_id: int = 0) -> None:
        if interval_ns < 1:
            raise ValueError(f"interval_ns must be >= 1: {interval_ns}")
        if flows_per_probe < 1:
            raise ValueError(
                f"flows_per_probe must be >= 1: {flows_per_probe}")
        self.sim = sim
        self.lanes = list(lanes)
        self.interval_ns = interval_ns
        self.admission = admission
        self.flows_per_probe = flows_per_probe
        self.max_bursts = max_bursts
        self.task_id = task_id
        #: Per-lane probe programs, hop-budgeted once up front (the
        #: budget call is memoized per endpoint, but resolving it here
        #: keeps _fire allocation-free).
        self._programs: List[AssembledProgram] = []
        for endpoint, _dst in self.lanes:
            sized = (endpoint.budget(program)
                     if hasattr(endpoint, "budget") else program)
            self._programs.append(sized)
        self.records: List[List[FlowRecord]] = [[] for _ in self.lanes]
        self._timer = PeriodicTimer(sim, interval_ns, self._fire)
        self.bursts_fired = 0
        self.probes_sent = 0
        self.responses_received = 0

    @property
    def logical_flows(self) -> int:
        """Logical flows this controller has driven so far."""
        return self.probes_sent * self.flows_per_probe

    def start(self, first_delay_ns: Optional[int] = None) -> None:
        """Begin probing (first burst after one interval by default)."""
        self._timer.start(self.interval_ns if first_delay_ns is None
                          else first_delay_ns)

    def stop(self) -> None:
        """Stop firing; in-flight probes may still come back."""
        self._timer.stop()

    def _fire(self) -> None:
        if (self.max_bursts is not None
                and self.bursts_fired >= self.max_bursts):
            self._timer.stop()
            return
        self.bursts_fired += 1
        for lane, (endpoint, dst_mac) in enumerate(self.lanes):
            program = self._programs[lane]
            self.admission.admit(program, flows=self.flows_per_probe)
            self.probes_sent += 1
            endpoint.send(program, dst_mac=dst_mac, task_id=self.task_id,
                          on_response=self._recorder(lane))

    def _recorder(self, lane: int) -> Callable[[Any], None]:
        records = self.records[lane]

        def record(view: Any) -> None:
            self.responses_received += 1
            records.append((view.seq, int(view.fault), view.hops(),
                            zlib.crc32(bytes(view.tpp.memory))))
        return record

    def flow_lines(self) -> List[str]:
        """Canonical per-flow report lines, lane-major then arrival
        order — the controller's contribution to the region digest."""
        lines: List[str] = []
        for lane, records in enumerate(self.records):
            for seq, fault, hops, crc in records:
                lines.append(f"lane{lane}:{seq}:{fault}:{hops}:{crc:08x}")
        return lines
