"""One shard-sized slice of the fleet: a region and its declarative spec.

A :class:`RegionSpec` is plain picklable data — everything a worker
process needs to build its regions from scratch.  :func:`build_region`
turns a spec into a live :class:`Region`: its own
:class:`~repro.net.topology.Network` (hence its own simulator and event
queue), a chain of TPP switches whose last member is the *gateway* with a
boundary port toward the next region in the ring, hosts with
hop-budgeted TPP endpoints, and a :class:`~repro.fleet.aggregate.
FleetProbeController` driving probes at the next region's hosts.

Determinism is placement-independent by construction:

- the region's simulator seed is a pure function of ``(master_seed,
  region index)``;
- the region builds with ``Network(index_base=index * stride)``, so every
  auto-assigned MAC, IP and switch id is globally unique and any region
  can compute any other region's addresses (``host_mac(base + i)``)
  without touching its objects;
- forwarding is a unidirectional ring: remote MACs route toward the
  gateway and out the boundary port, so probe echoes circle the ring
  back to their sender.

Nothing here knows about shards: a region behaves identically whether it
shares a process with every other region or runs alone — which is the
whole bit-identical-under-resharding argument.
"""

from __future__ import annotations

import dataclasses
import hashlib
import time
from typing import Any, Dict, List

from repro import units
from repro.core.assembler import assemble
from repro.endhost.client import TPPEndpoint
from repro.errors import ConfigurationError
from repro.fleet.aggregate import BatchedAdmission, FleetProbeController
from repro.fleet.boundary import (
    BoundaryIngress,
    BoundaryMessage,
    attach_boundary_port,
)
from repro.net.addresses import host_mac
from repro.net.routing import install_shortest_path_routes
from repro.net.topology import Network

#: Default probe program: the two-sample hop query of Figure 1.
DEFAULT_PROBE = "PUSH [Switch:SwitchID]\nPUSH [Queue:QueueSize]"


@dataclasses.dataclass(frozen=True)
class RegionSpec:
    """Everything needed to (re)build one region, as picklable data."""

    index: int
    n_regions: int
    switches: int = 2
    hosts_per_switch: int = 1
    master_seed: int = 0
    #: Address-space spacing between regions (``index_base`` stride);
    #: must exceed both per-region device counts.
    stride: int = 1024
    rate_bps: int = units.GIGABITS_PER_SEC
    delay_ns: int = 1_000
    #: Boundary propagation delay; also the fleet driver's barrier
    #: quantum, so it must be shared by every region in a fleet.
    boundary_delay_ns: int = 25_000
    queue_capacity_bytes: int = 512 * 1024
    trace_enabled: bool = False
    # -- probe workload ------------------------------------------------- #
    probe_source: str = DEFAULT_PROBE
    probe_hops: int = 2
    probe_interval_ns: int = 100_000
    probe_bursts: int = 3
    flows_per_probe: int = 1
    task_id: int = 0

    def __post_init__(self) -> None:
        if not 0 <= self.index < self.n_regions:
            raise ConfigurationError(
                f"region index {self.index} outside fleet of "
                f"{self.n_regions}")
        if self.switches < 1 or self.hosts_per_switch < 1:
            raise ConfigurationError(
                "need at least one switch and one host per switch")
        if self.stride < max(self.switches,
                             self.switches * self.hosts_per_switch):
            raise ConfigurationError(
                f"stride {self.stride} smaller than a region's device "
                "count; addresses would collide")
        if self.boundary_delay_ns < 1:
            raise ConfigurationError("boundary delay must be >= 1 ns")

    @property
    def seed(self) -> int:
        """Region seed: a pure function of (master seed, index) — never
        of shard placement."""
        return (self.master_seed * 1_000_003 + self.index * 7_919 + 1) \
            & 0x7FFF_FFFF

    @property
    def index_base(self) -> int:
        return self.index * self.stride

    @property
    def hosts(self) -> int:
        return self.switches * self.hosts_per_switch

    @property
    def next_region(self) -> int:
        return (self.index + 1) % self.n_regions

    def remote_host_mac(self, region: int, host: int) -> int:
        """MAC of host ``host`` in any region, computed, not looked up."""
        return host_mac(region * self.stride + host)


def fleet_specs(n_regions: int, **overrides: Any) -> List[RegionSpec]:
    """Specs for a homogeneous ring fleet (the common case)."""
    return [RegionSpec(index=r, n_regions=n_regions, **overrides)
            for r in range(n_regions)]


class Region:
    """A live region: network, gateway boundary, endpoints, controller."""

    def __init__(self, spec: RegionSpec) -> None:
        self.spec = spec
        self.outbox: List[BoundaryMessage] = []
        #: Wall-clock seconds this region's simulator has been busy —
        #: the raw material for the driver's modeled critical path.
        #: Deliberately *not* part of any digest (it is nondeterministic).
        self.busy_seconds = 0.0

        net = Network(seed=spec.seed, trace_enabled=spec.trace_enabled,
                      index_base=spec.index_base)
        self.net = net
        r = spec.index
        self.switch_chain = [net.add_switch(f"r{r}s{j}")
                             for j in range(spec.switches)]
        #: Port on switch j leading to switch j+1 (chain "up" direction).
        self._up_port: Dict[int, int] = {}
        for j, (left, right) in enumerate(zip(self.switch_chain,
                                              self.switch_chain[1:])):
            port_l, _port_r = net.link(left, right, spec.rate_bps,
                                       spec.delay_ns,
                                       spec.queue_capacity_bytes)
            self._up_port[j] = port_l.index
        self.hosts = []
        for i in range(spec.hosts):
            host = net.add_host(f"r{r}h{i}")
            net.link(host, self.switch_chain[i % spec.switches],
                     spec.rate_bps, spec.delay_ns,
                     spec.queue_capacity_bytes)
            self.hosts.append(host)

        self.gateway = self.switch_chain[-1]
        _port, self.boundary_port_index, self.ingress = attach_boundary_port(
            net, self.gateway, spec.next_region, self.outbox,
            spec.rate_bps, spec.boundary_delay_ns,
            spec.queue_capacity_bytes,
            ingress_name=f"region{(r - 1) % spec.n_regions}->{r}")
        self._up_port[spec.switches - 1] = self.boundary_port_index

        install_shortest_path_routes(net)
        self._install_remote_routes()

        #: A worst-case forward path executes every switch in this
        #: region's chain and every switch in the destination's: budget
        #: probes for both legs (echoes carry the done-bit and execute
        #: nowhere).
        hop_budget = 2 * spec.switches
        self.endpoints = [TPPEndpoint(host, hop_budget=hop_budget)
                          for host in self.hosts]

        program = assemble(spec.probe_source, hops=spec.probe_hops)
        self.admission = BatchedAdmission(
            self.switch_chain,
            memory_map=self.gateway.mmu.memory_map)
        lanes = [(endpoint, self._lane_dst(i))
                 for i, endpoint in enumerate(self.endpoints)]
        self.controller = FleetProbeController(
            net.sim, lanes, program, spec.probe_interval_ns,
            self.admission, flows_per_probe=spec.flows_per_probe,
            max_bursts=spec.probe_bursts, task_id=spec.task_id)
        self.controller.start()

    def _lane_dst(self, lane: int) -> int:
        """Lane i probes host i of the next region around the ring (in a
        one-region fleet: the next host of this region)."""
        spec = self.spec
        if spec.n_regions == 1:
            return host_mac(spec.index_base + (lane + 1) % spec.hosts)
        return spec.remote_host_mac(spec.next_region, lane)

    def _install_remote_routes(self) -> None:
        """Route every remote host MAC up the chain and out the boundary.

        Computed from region arithmetic alone — no cross-region object
        access, so regions build independently in any process.
        """
        spec = self.spec
        for region in range(spec.n_regions):
            if region == spec.index:
                continue
            for i in range(spec.hosts):
                mac = spec.remote_host_mac(region, i)
                for j, switch in enumerate(self.switch_chain):
                    switch.install_l2_route(mac, self._up_port[j])

    # ------------------------------------------------------------------ #
    # Driver interface
    # ------------------------------------------------------------------ #

    def run_until(self, until_ns: int) -> List[BoundaryMessage]:
        """Advance to the barrier; return (and clear) the outbox."""
        started = time.perf_counter()
        self.net.sim.run(until_ns=until_ns)
        self.busy_seconds += time.perf_counter() - started
        exported = list(self.outbox)
        self.outbox.clear()
        return exported

    def inject(self, messages: List[BoundaryMessage]) -> None:
        """Ingest boundary messages (already canonically ordered)."""
        for message in messages:
            self.ingress.inject(message)

    # ------------------------------------------------------------------ #
    # Determinism digests and counters
    # ------------------------------------------------------------------ #

    def digest(self) -> Dict[str, str]:
        """Hex digests over everything resharding must not change."""
        flows = hashlib.sha256()
        for line in self.controller.flow_lines():
            flows.update(line.encode())
            flows.update(b"\n")
        switches = hashlib.sha256()
        for switch in self.switch_chain:
            line = (f"{switch.name}:{switch.packets_switched}:"
                    f"{switch.tcpu.tpps_executed}")
            switches.update(line.encode())
            switches.update(switch.mmu.sram_image())
        return {"flows": flows.hexdigest(),
                "switches": switches.hexdigest()}

    def counters(self) -> Dict[str, int]:
        """Aggregate region counters for fleet reporting."""
        return {
            "probes_sent": self.controller.probes_sent,
            "responses_received": self.controller.responses_received,
            "logical_flows": self.controller.logical_flows,
            "programs_verified": self.admission.programs_verified,
            "flows_admitted": self.admission.flows_admitted,
            "verifications_saved": self.admission.verifications_saved,
            "certificates_installed": self.admission.certificates_installed,
            "packets_switched": sum(s.packets_switched
                                    for s in self.switch_chain),
            "tpps_executed": sum(s.tcpu.tpps_executed
                                 for s in self.switch_chain),
            "frames_exported": sum(
                port.link.frames_exported for port in self.gateway.ports
                if hasattr(port.link, "frames_exported")),
            "frames_injected": self.ingress.frames_injected,
        }


def build_region(spec: RegionSpec) -> Region:
    """Build one region from its spec (worker-side entry point)."""
    return Region(spec)
