"""Sharded fleet-scale simulation: regions, boundaries, batched admission.

The fleet subsystem scales the single-simulator model out: the topology
is partitioned into ring-connected *regions*, each with its own
deterministically-seeded simulator, coupled only by message-passing
boundary links under a time-synchronization barrier
(:mod:`repro.fleet.driver`).  Results are bit-identical for any shard
count or transport.  On top, :mod:`repro.fleet.aggregate` amortizes
admission (verifier + per-switch race tables) so one controller can
stand for 10^5–10^6 logical flows.
"""

from repro.fleet.aggregate import BatchedAdmission, FleetProbeController
from repro.fleet.boundary import (
    BoundaryIngress,
    BoundaryLink,
    BoundaryMessage,
    attach_boundary_port,
    injection_order,
)
from repro.fleet.driver import FleetResult, ShardedFleet, run_fleet
from repro.fleet.region import (
    Region,
    RegionSpec,
    build_region,
    fleet_specs,
)

__all__ = [
    "BatchedAdmission",
    "BoundaryIngress",
    "BoundaryLink",
    "BoundaryMessage",
    "FleetProbeController",
    "FleetResult",
    "Region",
    "RegionSpec",
    "ShardedFleet",
    "attach_boundary_port",
    "build_region",
    "fleet_specs",
    "injection_order",
    "run_fleet",
]
