"""The sharded fleet driver: barrier-synchronized regional simulators.

:class:`ShardedFleet` partitions a ring of regions across *shards*
(workers).  Each region keeps its own deterministically-seeded simulator
(:mod:`repro.fleet.region`); the driver advances the whole fleet in
barrier rounds of one *quantum* ``Q`` — the boundary propagation delay:

1. every region runs ``sim.run(until_ns = T + Q)``;
2. each region's outbox (frames serialized onto boundary links during
   the window) is collected;
3. messages are grouped by destination region, sorted into the canonical
   injection order, and injected — a frame emitted in ``[T, T+Q)``
   arrives at ``>= T+Q`` because the boundary delay is at least ``Q``,
   so injection at the barrier never back-dates an event;
4. ``T += Q``.

Because regions are fixed and only their *grouping* onto shards varies,
every per-region event sequence — and therefore every per-flow report,
SRAM image and verifier verdict — is bit-identical for any shard count.

Transports
----------

``inline`` (default) runs every region in this process, round-robin
within each barrier round — same API, no processes, exact on any
machine.  ``fork`` runs each shard as a forked worker process holding
its regions, with a pipe command loop (run / inject / finish); on a
multi-core box the shards' windows genuinely overlap.

Throughput modeling
-------------------

Each region accounts the wall-clock time its simulator is busy.  The
driver folds these into a *modeled critical path*: per round, the
slowest shard's busy time (the barrier waits for it); summed over
rounds.  ``aggregate packets/s = packets / modeled seconds`` is then a
machine-honest estimate of fleet throughput at S shards even when the
transport is inline on one core — and the real wall time is reported
alongside it.
"""

from __future__ import annotations

import dataclasses
import hashlib
import time
from multiprocessing.connection import Connection
from typing import Dict, List, Tuple, Union, cast

from repro.errors import ConfigurationError
from repro.fleet.boundary import BoundaryMessage, injection_order
from repro.fleet.region import Region, RegionSpec, build_region

TRANSPORTS = ("inline", "fork")

#: What one shard's window produces: boundary messages and busy seconds.
RunResult = Tuple[List[BoundaryMessage], float]
#: What one shard reports at the end: per-region (digest, counters).
FinishResult = Dict[int, Tuple[Dict[str, str], Dict[str, int]]]


@dataclasses.dataclass
class FleetResult:
    """Everything one :meth:`ShardedFleet.run` produced."""

    n_regions: int
    shards: int
    transport: str
    duration_ns: int
    quantum_ns: int
    rounds: int
    messages_exchanged: int
    #: Per-region determinism digests, in region order.
    digests: List[Dict[str, str]]
    #: Summed region counters (probes, flows, admissions, switching).
    counters: Dict[str, int]
    #: Sum over rounds of the slowest shard's busy seconds.
    modeled_seconds: float
    #: Real elapsed time of the whole run (driver overhead included).
    wall_seconds: float

    def fingerprint(self) -> str:
        """One hex digest over every region digest — the value that must
        not change when the fleet is resharded."""
        rollup = hashlib.sha256()
        for digest in self.digests:
            rollup.update(digest["flows"].encode())
            rollup.update(digest["switches"].encode())
        return rollup.hexdigest()

    @property
    def packets_per_modeled_second(self) -> float:
        if self.modeled_seconds <= 0:
            return 0.0
        return self.counters.get("packets_switched", 0) / self.modeled_seconds

    @property
    def flows_per_modeled_second(self) -> float:
        if self.modeled_seconds <= 0:
            return 0.0
        return self.counters.get("logical_flows", 0) / self.modeled_seconds


class _InlineShard:
    """One shard's regions, executed in this process."""

    def __init__(self, specs: List[RegionSpec]) -> None:
        self.regions: Dict[int, Region] = {
            spec.index: build_region(spec) for spec in specs}
        self._pending_until = 0

    # start_run/collect_run mirror the fork transport's split exchange so
    # the driver can treat every shard uniformly; inline shards simply do
    # the work at collect time, which serializes them exactly as the old
    # eager form did.
    def start_run(self, until_ns: int) -> None:
        self._pending_until = until_ns

    def collect_run(self) -> RunResult:
        return self.run_until(self._pending_until)

    def run_until(self, until_ns: int) -> RunResult:
        messages: List[BoundaryMessage] = []
        busy = 0.0
        for region in self.regions.values():
            before = region.busy_seconds
            messages.extend(region.run_until(until_ns))
            busy += region.busy_seconds - before
        return messages, busy

    def inject(self, region_index: int,
               messages: List[BoundaryMessage]) -> None:
        self.regions[region_index].inject(messages)

    def finish(self) -> FinishResult:
        return {index: (region.digest(), region.counters())
                for index, region in self.regions.items()}

    def close(self) -> None:
        pass


def _fork_worker_main(conn: Connection, specs: List[RegionSpec]) -> None:
    """Forked worker: build regions, then serve the command loop."""
    shard = _InlineShard(specs)
    while True:
        command, payload = conn.recv()
        if command == "run":
            conn.send(shard.run_until(payload))
        elif command == "inject":
            region_index, messages = payload
            shard.inject(region_index, messages)
        elif command == "finish":
            conn.send(shard.finish())
        elif command == "close":
            conn.close()
            return


class _ForkShard:
    """One shard's regions, executed in a forked worker process."""

    def __init__(self, specs: List[RegionSpec]) -> None:
        import multiprocessing

        context = multiprocessing.get_context("fork")
        self._conn, child = context.Pipe()
        self._process = context.Process(
            target=_fork_worker_main, args=(child, specs), daemon=True)
        self._process.start()
        child.close()
        self._awaiting_run = False

    # The run exchange is split so the driver can start *every* shard's
    # window before collecting any result — that's where fork-transport
    # parallelism comes from.
    def start_run(self, until_ns: int) -> None:
        self._conn.send(("run", until_ns))
        self._awaiting_run = True

    def collect_run(self) -> RunResult:
        assert self._awaiting_run
        self._awaiting_run = False
        return cast(RunResult, self._conn.recv())

    def run_until(self, until_ns: int) -> RunResult:
        self.start_run(until_ns)
        return self.collect_run()

    def inject(self, region_index: int,
               messages: List[BoundaryMessage]) -> None:
        self._conn.send(("inject", (region_index, messages)))

    def finish(self) -> FinishResult:
        self._conn.send(("finish", None))
        return cast(FinishResult, self._conn.recv())

    def close(self) -> None:
        try:
            self._conn.send(("close", None))
            self._conn.close()
        except (BrokenPipeError, OSError):  # pragma: no cover - racing exit
            pass
        self._process.join(timeout=30)
        if self._process.is_alive():  # pragma: no cover - hung worker
            self._process.terminate()


class ShardedFleet:
    """Drive a ring of regions across ``shards`` workers.

    Region ``r`` is owned by shard ``r % shards`` — a fixed, declared
    assignment, so two runs with the same specs and shard count do the
    same work in the same order.
    """

    def __init__(self, specs: List[RegionSpec], shards: int = 1,
                 transport: str = "inline") -> None:
        if not specs:
            raise ConfigurationError("a fleet needs at least one region")
        if sorted(spec.index for spec in specs) != list(range(len(specs))):
            raise ConfigurationError(
                "region specs must cover indices 0..n-1 exactly once")
        if any(spec.n_regions != len(specs) for spec in specs):
            raise ConfigurationError(
                "every spec's n_regions must equal the spec count")
        quanta = {spec.boundary_delay_ns for spec in specs}
        if len(quanta) != 1:
            raise ConfigurationError(
                f"boundary delays differ across regions ({sorted(quanta)}); "
                "the barrier quantum must be fleet-wide")
        if shards < 1:
            raise ConfigurationError(f"shards must be >= 1: {shards}")
        if transport not in TRANSPORTS:
            raise ConfigurationError(
                f"transport must be one of {TRANSPORTS}: {transport!r}")
        self.specs = sorted(specs, key=lambda spec: spec.index)
        self.shards = min(shards, len(specs))
        self.transport = transport
        self.quantum_ns = self.specs[0].boundary_delay_ns
        #: region index -> shard index
        self.assignment = {spec.index: spec.index % self.shards
                           for spec in self.specs}

    def _spawn(self) -> List[Union[_InlineShard, _ForkShard]]:
        by_shard: List[List[RegionSpec]] = [[] for _ in range(self.shards)]
        for spec in self.specs:
            by_shard[self.assignment[spec.index]].append(spec)
        factory = (_InlineShard if self.transport == "inline"
                   else _ForkShard)
        return [factory(specs) for specs in by_shard]

    def run(self, duration_ns: int) -> FleetResult:
        """Run the fleet for ``duration_ns`` and collect the result."""
        if duration_ns < 1:
            raise ConfigurationError(
                f"duration must be >= 1 ns: {duration_ns}")
        started = time.perf_counter()
        workers = self._spawn()
        quantum = self.quantum_ns
        horizon = 0
        rounds = 0
        messages_exchanged = 0
        modeled = 0.0
        try:
            while horizon < duration_ns:
                horizon = min(horizon + quantum, duration_ns)
                rounds += 1
                # Phase 1: every shard runs its window.  All windows are
                # started before any result is collected: fork shards
                # genuinely overlap, inline shards do the work at collect
                # time in the same shard order as before.
                for worker in workers:
                    worker.start_run(horizon)
                results = [worker.collect_run() for worker in workers]
                modeled += max(busy for _msgs, busy in results)
                # Phase 2: the barrier exchange, in canonical order.
                pending: Dict[int, List[BoundaryMessage]] = {}
                for messages, _busy in results:
                    for message in messages:
                        pending.setdefault(message.dst_region,
                                           []).append(message)
                for region_index in sorted(pending):
                    ordered = injection_order(pending[region_index])
                    messages_exchanged += len(ordered)
                    workers[self.assignment[region_index]].inject(
                        region_index, ordered)
            collected: FinishResult = {}
            for worker in workers:
                collected.update(worker.finish())
        finally:
            for worker in workers:
                worker.close()

        digests = [collected[spec.index][0] for spec in self.specs]
        counters: Dict[str, int] = {}
        for spec in self.specs:
            for key, value in collected[spec.index][1].items():
                counters[key] = counters.get(key, 0) + value
        return FleetResult(
            n_regions=len(self.specs), shards=self.shards,
            transport=self.transport, duration_ns=duration_ns,
            quantum_ns=quantum, rounds=rounds,
            messages_exchanged=messages_exchanged, digests=digests,
            counters=counters, modeled_seconds=modeled,
            wall_seconds=time.perf_counter() - started)


def run_fleet(specs: List[RegionSpec], duration_ns: int, shards: int = 1,
              transport: str = "inline") -> FleetResult:
    """One-shot convenience wrapper around :class:`ShardedFleet`."""
    return ShardedFleet(specs, shards=shards, transport=transport).run(
        duration_ns)
