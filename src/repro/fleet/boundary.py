"""Cross-region boundary links: message-passing instead of shared memory.

A sharded fleet partitions the topology into regions, each running on its
own :class:`~repro.sim.simulator.Simulator`.  Inside a region, links
deliver frames by scheduling events on the shared simulator; *between*
regions no object references may cross (regions can live in different
processes), so boundary traffic is carried as serialized messages:

- :class:`BoundaryLink` is the egress half.  It subclasses
  :class:`~repro.net.link.Link` so the owning
  :class:`~repro.net.port.Port` drives queueing and serialization exactly
  as for an in-region link, but at the instant serialization completes it
  appends a :class:`BoundaryMessage` — destination region, absolute
  arrival time, full wire bytes — to the region's outbox instead of
  scheduling a local event.
- :class:`BoundaryIngress` is the ingress half.  The fleet driver hands it
  the messages collected at a time barrier; it decodes the wire bytes and
  schedules the arrival at the recorded absolute instant, announcing the
  delivery in the receiving switch's ingress ledger exactly as
  ``Link._arrive`` would — so cross-shard frames still participate in
  same-instant TCPU batching.

Determinism contract
--------------------

The driver only injects messages at barriers, and a message emitted during
the window ``[T, T+Q)`` carries an arrival time ``>= T+Q`` whenever the
boundary propagation delay is at least the barrier quantum ``Q`` — the
bytes are still in flight when the barrier fires, so injecting them there
never back-dates an event.  Messages bound for one region are injected in
the canonical order :func:`injection_order` defines; the event queue is
FIFO at equal timestamps, so simultaneous arrivals replay identically
regardless of how many shards produced them.
"""

from __future__ import annotations

import random
from typing import Any, List, NamedTuple, Optional, Tuple

from repro.errors import ConfigurationError
from repro.net.link import Link
from repro.net.packet import EthernetFrame
from repro.net.port import Port
from repro.net.wire import decode_frame, encode_frame
from repro.sim.simulator import Simulator


class BoundaryMessage(NamedTuple):
    """One frame crossing a region boundary, as plain picklable data."""

    dst_region: int
    #: Absolute arrival instant in the destination region's clock (the
    #: regions' clocks are the same fleet-wide clock).
    arrival_ns: int
    #: Name of the emitting boundary link — part of the canonical
    #: injection sort key, so equal-time arrivals from different links
    #: have a total order that no shard layout can perturb.
    link_name: str
    #: Per-link emission counter (FIFO order within one link).
    seq: int
    #: Full wire encoding (``repro.net.wire``), FCS included.
    raw: bytes


def injection_order(messages: List[BoundaryMessage]) -> List[BoundaryMessage]:
    """The canonical order messages enter a region in.

    Sorted by ``(arrival_ns, link_name, seq)``: time first, then a total
    tie-break that depends only on the topology (link names) and each
    link's own FIFO order — never on which shard ran first.
    """
    return sorted(messages, key=lambda m: (m.arrival_ns, m.link_name, m.seq))


class BoundaryLink(Link):
    """The egress half of a cross-region wire.

    Owns no receiver: frames leave the region as messages.  Impairments
    are deliberately unsupported — the loss/corruption draws would have
    to be replayed identically on both sides of the boundary, and the
    fleet experiments keep their impairments on in-region links.
    """

    def __init__(self, sim: Simulator, rate_bps: int, delay_ns: int,
                 name: str, dst_region: int,
                 outbox: List[BoundaryMessage]) -> None:
        super().__init__(sim, rate_bps, delay_ns, name=name)
        self.dst_region = dst_region
        self.outbox = outbox
        self.frames_exported = 0
        self._seq = 0

    def set_impairments(self, loss_rate: float = 0.0,
                        corrupt_rate: float = 0.0,
                        duplicate_rate: float = 0.0,
                        rng: Optional[random.Random] = None) -> None:
        if loss_rate or corrupt_rate or duplicate_rate:
            raise ConfigurationError(
                f"boundary link {self.name!r} cannot be impaired; "
                "impair in-region links instead")

    def deliver_after_propagation(self, frame: EthernetFrame) -> None:
        """Export the frame instead of scheduling a local arrival."""
        if not self.up:
            self.frames_lost += 1
            return
        self.outbox.append(BoundaryMessage(
            dst_region=self.dst_region,
            arrival_ns=self.sim.now_ns + self.delay_ns,
            link_name=self.name,
            seq=self._seq,
            raw=encode_frame(frame)))
        self._seq += 1
        self.frames_exported += 1


class BoundaryIngress:
    """The ingress half: re-materializes messages inside a region.

    Bound to the gateway device and the port index the frames notionally
    arrive on.  :meth:`inject` mirrors ``Link._schedule_arrival`` — the
    arrival is announced in the device's ``inbound_at`` ledger at
    scheduling time — and the private arrival callback mirrors
    ``Link._arrive``: retire the ledger entry, refresh ``inbound_now``,
    trace, then ``device.receive``.
    """

    def __init__(self, sim: Simulator, device: Any, port_index: int,
                 name: str = "") -> None:
        self.sim = sim
        self.device = device
        self.port_index = port_index
        self.name = name or f"boundary->{device.name}"
        self._inbound = (device.inbound_at if device.batches_ingress
                         else None)
        self.frames_injected = 0
        self.bytes_injected = 0

    def inject(self, message: BoundaryMessage) -> None:
        """Schedule one message's arrival at its recorded instant.

        Must be called with ``message.arrival_ns`` not in the region's
        past — the driver's barrier quantum guarantees this.
        """
        frame = decode_frame(message.raw)
        event = self.sim.schedule_at(message.arrival_ns, self._arrive, frame)
        arrivals = self._inbound
        if arrivals is not None:
            arrivals[event.time_ns] += 1

    def _arrive(self, frame: EthernetFrame) -> None:
        # Mirrors Link._arrive (keep in sync): ledger retirement and the
        # inbound_now digest must behave identically for injected frames,
        # or cross-boundary arrivals would batch differently.
        self.frames_injected += 1
        self.bytes_injected += frame.size_bytes
        device = self.device
        arrivals = self._inbound
        if arrivals is not None:
            now = self.sim.now_ns
            remaining = arrivals.pop(now, 1) - 1
            if remaining > 0:
                arrivals[now] = remaining
                device.inbound_now = remaining
            else:
                device.inbound_now = 0
        trace = device.trace
        if trace.wants("link.deliver"):
            trace.emit(self.sim.now_ns, self.name, "link.deliver",
                       frame_uid=frame.uid, size_bytes=frame.size_bytes,
                       dst_device=device.name, port=self.port_index)
        device.receive(frame, self.port_index)


def attach_boundary_port(net: Any, gateway: Any, dst_region: int,
                         outbox: List[BoundaryMessage], rate_bps: int,
                         delay_ns: int,
                         queue_capacity_bytes: int = 512 * 1024,
                         ingress_name: str = ""
                         ) -> Tuple[Port, int, BoundaryIngress]:
    """Give ``gateway`` one boundary port: egress to ``dst_region``,
    ingress for whatever the driver routes here.

    Returns ``(port, port_index, ingress)``.  The egress and ingress
    halves share the port index, like the two directions of an ordinary
    full-duplex link.
    """
    link = BoundaryLink(net.sim, rate_bps, delay_ns,
                        name=f"{gateway.name}->region{dst_region}",
                        dst_region=dst_region, outbox=outbox)
    port = Port(net.sim, link, queue_capacity_bytes)
    index = gateway.add_port(port)
    ingress = BoundaryIngress(net.sim, gateway, index, name=ingress_name)
    return port, index, ingress
