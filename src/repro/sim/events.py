"""Event objects and the pending-event queue.

Events are ordered by ``(time_ns, sequence)``: two events scheduled for the
same instant fire in the order they were scheduled.  This determinism matters
for reproducibility — RCP convergence traces and ndb packet orderings must be
identical across runs with the same seed.

Hot-path representation
-----------------------

The heap holds plain ``(time_ns, sequence, event)`` tuples rather than the
:class:`Event` objects themselves, so every sift comparison is a C-level
tuple comparison of two ints (``sequence`` is unique, so the event object is
never compared).  :class:`Event` itself uses ``__slots__``; it exists only as
the cancellation handle returned to callers.

Cancellation is lazy — :meth:`Event.cancel` marks the handle and the heap
entry is discarded when it reaches the top — but no longer unbounded: the
queue counts cancelled stragglers and compacts (filter + re-heapify) once
they exceed a configurable fraction of the heap.  Timer re-arming churn
(RCP retransmission logic restarts its one-shot timer on every packet)
otherwise grows the heap without bound.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, List, Optional, Tuple

#: Below this many cancelled stragglers compaction is never attempted —
#: filtering a tiny heap costs more than the stragglers' memory.
DEFAULT_COMPACT_MIN_CANCELLED = 64

#: Compact when cancelled stragglers exceed this fraction of heap entries
#: (i.e. the live fraction drops below ``1 - fraction``).
DEFAULT_COMPACT_FRACTION = 0.5


class Event:
    """A single scheduled callback.

    Attributes:
        time_ns: absolute simulated time at which the event fires.
        sequence: monotonically increasing tie-breaker.
        callback: callable invoked as ``callback(*args)`` when fired.
        args: positional arguments for the callback.
        cancelled: set via :meth:`cancel`; cancelled events are skipped
            (lazy deletion — the heap entry stays until popped or the
            queue compacts).
    """

    __slots__ = ("time_ns", "sequence", "callback", "args", "cancelled",
                 "_queue")

    def __init__(self, time_ns: int, sequence: int,
                 callback: Callable[..., None],
                 args: Tuple[Any, ...] = (),
                 cancelled: bool = False) -> None:
        self.time_ns = time_ns
        self.sequence = sequence
        self.callback = callback
        self.args = args
        self.cancelled = cancelled
        # Owning queue while the event sits in its heap; cleared on pop or
        # purge so cancelling a stale handle cannot skew live accounting.
        self._queue: Optional["EventQueue"] = None

    def __lt__(self, other: "Event") -> bool:
        return (self.time_ns, self.sequence) < (other.time_ns, other.sequence)

    def cancel(self) -> None:
        """Prevent this event from firing.  Idempotent."""
        if not self.cancelled:
            self.cancelled = True
            queue = self._queue
            if queue is not None:
                queue._note_cancelled()

    def fire(self) -> None:
        """Invoke the callback unless the event was cancelled."""
        if not self.cancelled:
            self.callback(*self.args)

    def __repr__(self) -> str:
        state = " cancelled" if self.cancelled else ""
        return (f"<Event t={self.time_ns} seq={self.sequence}{state} "
                f"{self.callback!r}>")


class EventQueue:
    """Min-heap of :class:`Event` with deterministic FIFO tie-breaking."""

    def __init__(self,
                 compact_min_cancelled: int = DEFAULT_COMPACT_MIN_CANCELLED,
                 compact_fraction: float = DEFAULT_COMPACT_FRACTION) -> None:
        self._heap: List[Tuple[int, int, Event]] = []
        self._sequence = 0
        self._cancelled = 0
        self.compact_min_cancelled = compact_min_cancelled
        self.compact_fraction = compact_fraction
        #: How many times the heap has been compacted (observability).
        self.compactions = 0

    def __len__(self) -> int:
        """Heap entries, including cancelled stragglers not yet purged."""
        return len(self._heap)

    @property
    def live_count(self) -> int:
        """Events that will actually fire (cancelled stragglers excluded)."""
        return len(self._heap) - self._cancelled

    @property
    def cancelled_pending(self) -> int:
        """Cancelled events still occupying heap entries."""
        return self._cancelled

    def push(self, time_ns: int, callback: Callable[..., None],
             args: Tuple[Any, ...] = ()) -> Event:
        """Add an event at absolute time ``time_ns`` and return its handle."""
        sequence = self._sequence
        self._sequence = sequence + 1
        event = Event(time_ns, sequence, callback, args)
        event._queue = self
        heapq.heappush(self._heap, (time_ns, sequence, event))
        return event

    def pop(self) -> Optional[Event]:
        """Remove and return the earliest non-cancelled event, or ``None``.

        Cancelled events encountered on the way are discarded silently.
        """
        return self.pop_before(None)

    def pop_before(self, horizon_ns: Optional[int]) -> Optional[Event]:
        """Pop the earliest live event strictly before ``horizon_ns``.

        Returns ``None`` when the queue is empty or the earliest live event
        is at or past the horizon (that event stays queued).  Cancelled
        stragglers encountered at the head are purged either way.  A
        ``None`` horizon means "no horizon".
        """
        heap = self._heap
        while heap:
            head = heap[0]
            event = head[2]
            if event.cancelled:
                heapq.heappop(heap)
                self._cancelled -= 1
                event._queue = None
                continue
            if horizon_ns is not None and head[0] >= horizon_ns:
                return None
            heapq.heappop(heap)
            event._queue = None
            return event
        return None

    def peek_time(self) -> Optional[int]:
        """Time of the earliest non-cancelled event, or ``None`` if empty."""
        heap = self._heap
        while heap and heap[0][2].cancelled:
            entry = heapq.heappop(heap)
            self._cancelled -= 1
            entry[2]._queue = None
        if heap:
            return heap[0][0]
        return None

    def compact(self) -> int:
        """Purge cancelled stragglers and re-heapify; returns purged count.

        Normally triggered automatically from :meth:`Event.cancel` when
        stragglers exceed ``compact_fraction`` of the heap, but safe to
        call at any point — compaction preserves ``(time_ns, sequence)``
        firing order exactly.
        """
        if not self._cancelled:
            return 0
        live = [entry for entry in self._heap if not entry[2].cancelled]
        purged = len(self._heap) - len(live)
        for entry in self._heap:
            if entry[2].cancelled:
                entry[2]._queue = None
        self._heap = live
        heapq.heapify(live)
        self._cancelled = 0
        self.compactions += 1
        return purged

    def _note_cancelled(self) -> None:
        self._cancelled += 1
        if (self._cancelled >= self.compact_min_cancelled
                and self._cancelled > self.compact_fraction
                * len(self._heap)):
            self.compact()
