"""Event objects and the pending-event queue.

Events are ordered by ``(time_ns, sequence)``: two events scheduled for the
same instant fire in the order they were scheduled.  This determinism matters
for reproducibility — RCP convergence traces and ndb packet orderings must be
identical across runs with the same seed.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Any, Callable, Optional, Tuple


@dataclass(order=True)
class Event:
    """A single scheduled callback.

    Attributes:
        time_ns: absolute simulated time at which the event fires.
        sequence: monotonically increasing tie-breaker.
        callback: callable invoked as ``callback(*args)`` when fired.
        args: positional arguments for the callback.
        cancelled: set via :meth:`cancel`; cancelled events are skipped
            (lazy deletion — the heap entry stays until popped).
    """

    time_ns: int
    sequence: int
    callback: Callable[..., None] = field(compare=False)
    args: Tuple[Any, ...] = field(compare=False, default=())
    cancelled: bool = field(compare=False, default=False)

    def cancel(self) -> None:
        """Prevent this event from firing.  Idempotent."""
        self.cancelled = True

    def fire(self) -> None:
        """Invoke the callback unless the event was cancelled."""
        if not self.cancelled:
            self.callback(*self.args)


class EventQueue:
    """Min-heap of :class:`Event` with deterministic FIFO tie-breaking."""

    def __init__(self) -> None:
        self._heap: list = []
        self._sequence = 0

    def __len__(self) -> int:
        return len(self._heap)

    def push(self, time_ns: int, callback: Callable[..., None],
             args: Tuple[Any, ...] = ()) -> Event:
        """Add an event at absolute time ``time_ns`` and return its handle."""
        event = Event(time_ns, self._sequence, callback, args)
        self._sequence += 1
        heapq.heappush(self._heap, event)
        return event

    def pop(self) -> Optional[Event]:
        """Remove and return the earliest non-cancelled event, or ``None``.

        Cancelled events encountered on the way are discarded silently.
        """
        while self._heap:
            event = heapq.heappop(self._heap)
            if not event.cancelled:
                return event
        return None

    def peek_time(self) -> Optional[int]:
        """Time of the earliest non-cancelled event, or ``None`` if empty."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        if self._heap:
            return self._heap[0].time_ns
        return None
