"""Seeded random-number streams for reproducible experiments.

Every stochastic component (workload arrival processes, wireless SNR walks,
jittered probe timers) draws from its own named stream so adding a new
random consumer does not perturb existing traces.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict


class SeededRNG:
    """A family of independent, deterministically seeded random streams.

    ``SeededRNG(42).stream("workload")`` always yields the same sequence,
    regardless of what other streams exist or in what order they are
    created.
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self._streams: Dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return the stream for ``name``, creating it on first use."""
        if name not in self._streams:
            # Derive a per-stream seed from the master seed and the name.
            # hashlib (not built-in hash()) because str hashing is salted
            # per-process and would break run-to-run reproducibility.
            digest = hashlib.sha256(f"{self.seed}/{name}".encode()).digest()
            derived = int.from_bytes(digest[:8], "big")
            self._streams[name] = random.Random(derived)
        return self._streams[name]

    def reset(self) -> None:
        """Forget all streams; they will be re-created freshly seeded."""
        self._streams.clear()
