"""One-shot and periodic timers built on the event queue.

End-host rate controllers (RCP*'s per-flow probe loop), link-utilization
samplers, and EWMA updaters all run off :class:`PeriodicTimer`.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.errors import SimulationError
from repro.sim.events import Event
from repro.sim.simulator import Simulator


class OneShotTimer:
    """A restartable single-fire timer.

    Unlike a bare ``sim.schedule`` call, the timer can be cancelled and
    restarted, which is what retransmission-style logic needs.

    Same-instant semantics: ``cancel()`` + ``start()`` at the timer's own
    firing instant is deterministic.  If the cancelling event was scheduled
    *before* the timer's pending event, the old firing is suppressed and
    only the re-armed one runs; if it was scheduled *after*, the timer has
    already fired when the cancel executes (cancel is then a no-op on the
    spent event) and the re-arm fires again — plain FIFO order within the
    instant.  Either way :attr:`armed` agrees with the live event queue:
    superseded events are cancelled immediately and never counted by
    ``Simulator.pending_events()``.
    """

    def __init__(self, sim: Simulator, callback: Callable[..., None],
                 *args: Any) -> None:
        self._sim = sim
        self._callback = callback
        self._args = args
        self._event: Optional[Event] = None

    @property
    def armed(self) -> bool:
        """Whether the timer is currently pending."""
        return self._event is not None and not self._event.cancelled

    def start(self, delay_ns: int) -> None:
        """Arm (or re-arm) the timer ``delay_ns`` from now."""
        self.cancel()
        self._event = self._sim.schedule(delay_ns, self._fire)

    def cancel(self) -> None:
        """Disarm the timer if pending.  Idempotent."""
        if self._event is not None:
            self._event.cancel()
            self._event = None

    def _fire(self) -> None:
        self._event = None
        self._callback(*self._args)


class PeriodicTimer:
    """Fires ``callback`` every ``interval_ns`` until stopped.

    The next firing is scheduled *before* the callback runs, so a callback
    that takes simulated time (by scheduling further events) cannot skew the
    period, and a callback may safely call :meth:`stop`.
    """

    def __init__(self, sim: Simulator, interval_ns: int,
                 callback: Callable[..., None], *args: Any) -> None:
        if interval_ns <= 0:
            raise SimulationError(
                f"periodic timer interval must be positive, got {interval_ns}"
            )
        self._sim = sim
        self.interval_ns = interval_ns
        self._callback = callback
        self._args = args
        self._event: Optional[Event] = None
        self.fire_count = 0

    @property
    def running(self) -> bool:
        """Whether the timer has a pending firing."""
        return self._event is not None and not self._event.cancelled

    def start(self, first_delay_ns: Optional[int] = None) -> None:
        """Begin firing; the first tick is after ``first_delay_ns``
        (default: one full interval)."""
        self.stop()
        delay = self.interval_ns if first_delay_ns is None else first_delay_ns
        self._event = self._sim.schedule(delay, self._fire)

    def stop(self) -> None:
        """Cancel any pending firing.  Idempotent."""
        if self._event is not None:
            self._event.cancel()
            self._event = None

    def _fire(self) -> None:
        self._event = self._sim.schedule(self.interval_ns, self._fire)
        self.fire_count += 1
        self._callback(*self._args)
