"""Structured trace recording.

Devices emit :class:`TraceRecord` entries (packet enqueued, TPP executed,
rate register written, ...) into a shared :class:`TraceRecorder`.  The
benchmark harness and the ndb collector both consume these traces.

Trace levels and the hot-path guard
-----------------------------------

Every record kind has a :class:`TraceLevel`; the recorder stores records
whose level is at or above its threshold (default :attr:`TraceLevel.INFO`).
Hot callers must guard record construction with :meth:`TraceRecorder.wants`
so that building the ``**detail`` kwargs — often the expensive part, e.g.
snapshotting a TPP's packet memory — is skipped entirely when nobody
listens::

    if trace.wants("tpp.exec"):
        trace.emit(now, name, "tpp.exec", memory_words=tpp.words(), ...)

``wants`` is a single cached dict lookup after the first call per kind, and
just one attribute read when the recorder is disabled.  Per-frame firehose
kinds (``link.deliver``, ``queue.enqueue``) default to
:attr:`TraceLevel.DEBUG` and are therefore free unless a run opts in with
``trace.set_level(TraceLevel.DEBUG)``.

For long runs, ``max_records`` bounds memory: the recorder becomes a ring
buffer keeping the most recent records (taps still see every record live,
so online consumers like the ndb collector lose nothing).
"""

from __future__ import annotations

import enum
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional


class TraceLevel(enum.IntEnum):
    """Severity/verbosity of a record kind (logging-style ordering)."""

    DEBUG = 10    #: per-frame firehose; off by default
    INFO = 20     #: normal operational records (default threshold)
    WARNING = 30  #: drops, faults, losses — rare and always interesting


#: Default level per record kind; kinds not listed here are INFO.
DEFAULT_KIND_LEVELS: Dict[str, TraceLevel] = {
    # Per-frame firehose (opt-in).  The link impairment kinds live here
    # too: under an injected loss_rate they fire on a fixed fraction of
    # *all* frames, which is firehose volume, not rare-event evidence.
    "link.deliver": TraceLevel.DEBUG,
    "queue.enqueue": TraceLevel.DEBUG,
    "link.lost": TraceLevel.DEBUG,
    "link.corrupt": TraceLevel.DEBUG,
    "link.dup": TraceLevel.DEBUG,
    # Loss and fault evidence.
    "queue.drop": TraceLevel.WARNING,
    "switch.no_route": TraceLevel.WARNING,
    "switch.rule_drop": TraceLevel.WARNING,
    "tpp.dropped": TraceLevel.WARNING,
    "tpp.stripped": TraceLevel.WARNING,
    "host.undelivered": TraceLevel.WARNING,
}


@dataclass(frozen=True)
class TraceRecord:
    """One traced occurrence.

    Attributes:
        time_ns: simulated time of the occurrence.
        source: name of the emitting device (e.g. ``"sw1"``).
        kind: short category string (e.g. ``"tpp.exec"``, ``"queue.drop"``).
        detail: free-form payload for the record.
    """

    time_ns: int
    source: str
    kind: str
    detail: Dict[str, Any] = field(default_factory=dict)


class TraceRecorder:
    """Append-only in-memory trace with filtered views and live taps.

    A *tap* is a callback invoked synchronously on every matching record;
    the ndb trace collector uses one to reassemble packet journeys online.
    """

    def __init__(self, enabled: bool = True,
                 level: TraceLevel = TraceLevel.INFO,
                 max_records: Optional[int] = None) -> None:
        self.enabled = enabled
        self._level = TraceLevel(level)
        self._kind_levels: Dict[str, TraceLevel] = dict(DEFAULT_KIND_LEVELS)
        self._wants_cache: Dict[str, bool] = {}
        self.max_records = max_records
        self._records: Any = (deque(maxlen=max_records)
                              if max_records is not None else [])
        self._taps: List[Callable[[TraceRecord], None]] = []
        #: Total records accepted (including ones later evicted by the ring).
        self.records_emitted = 0
        #: Records evicted by the ring buffer (0 in unbounded mode).
        self.records_dropped = 0

    def __len__(self) -> int:
        return len(self._records)

    # ------------------------------------------------------------------ #
    # Levels
    # ------------------------------------------------------------------ #

    @property
    def level(self) -> TraceLevel:
        """Minimum level a kind must have to be recorded."""
        return self._level

    def set_level(self, level: TraceLevel) -> None:
        """Change the recording threshold (e.g. DEBUG for the firehose)."""
        self._level = TraceLevel(level)
        self._wants_cache.clear()

    def set_kind_level(self, kind: str, level: TraceLevel) -> None:
        """Override the level of one record kind.

        This is how a new trace kind is registered: pick a level here (or
        accept the INFO default) and guard the emit site with
        :meth:`wants` — no allocation happens unless the kind is wanted.
        """
        self._kind_levels[kind] = TraceLevel(level)
        self._wants_cache.pop(kind, None)

    def kind_level(self, kind: str) -> TraceLevel:
        """Effective level of a kind (INFO unless configured otherwise)."""
        return self._kind_levels.get(kind, TraceLevel.INFO)

    def wants(self, kind: str) -> bool:
        """Cheap fast-path guard: would a record of ``kind`` be stored?

        Hot callers check this before building ``**detail`` kwargs.
        """
        if not self.enabled:
            return False
        wanted = self._wants_cache.get(kind)
        if wanted is None:
            wanted = (self._kind_levels.get(kind, TraceLevel.INFO)
                      >= self._level)
            self._wants_cache[kind] = wanted
        return wanted

    # ------------------------------------------------------------------ #
    # Recording
    # ------------------------------------------------------------------ #

    def emit(self, time_ns: int, source: str, kind: str,
             **detail: Any) -> None:
        """Record one occurrence (no-op when disabled or below level)."""
        if not self.wants(kind):
            return
        record = TraceRecord(time_ns, source, kind, detail)
        self.records_emitted += 1
        records = self._records
        if self.max_records is not None and len(records) == self.max_records:
            self.records_dropped += 1
        records.append(record)
        for tap in self._taps:
            tap(record)

    def add_tap(self, tap: Callable[[TraceRecord], None]) -> None:
        """Invoke ``tap`` on every future record."""
        self._taps.append(tap)

    def records(self, kind: Optional[str] = None,
                source: Optional[str] = None) -> List[TraceRecord]:
        """Snapshot of records, optionally filtered by kind and/or source."""
        result: Any = self._records
        if kind is not None:
            result = [r for r in result if r.kind == kind]
        if source is not None:
            result = [r for r in result if r.source == source]
        return list(result)

    def iter_kind(self, kind: str) -> Iterator[TraceRecord]:
        """Iterate records of one kind in emission order."""
        return (r for r in self._records if r.kind == kind)

    def clear(self) -> None:
        """Drop all stored records (taps stay registered)."""
        self._records.clear()
