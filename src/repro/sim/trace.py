"""Structured trace recording.

Devices emit :class:`TraceRecord` entries (packet enqueued, TPP executed,
rate register written, ...) into a shared :class:`TraceRecorder`.  The
benchmark harness and the ndb collector both consume these traces.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional


@dataclass(frozen=True)
class TraceRecord:
    """One traced occurrence.

    Attributes:
        time_ns: simulated time of the occurrence.
        source: name of the emitting device (e.g. ``"sw1"``).
        kind: short category string (e.g. ``"tpp.exec"``, ``"queue.drop"``).
        detail: free-form payload for the record.
    """

    time_ns: int
    source: str
    kind: str
    detail: Dict[str, Any] = field(default_factory=dict)


class TraceRecorder:
    """Append-only in-memory trace with filtered views and live taps.

    A *tap* is a callback invoked synchronously on every matching record;
    the ndb trace collector uses one to reassemble packet journeys online.
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._records: List[TraceRecord] = []
        self._taps: List[Callable[[TraceRecord], None]] = []

    def __len__(self) -> int:
        return len(self._records)

    def emit(self, time_ns: int, source: str, kind: str,
             **detail: Any) -> None:
        """Record one occurrence (no-op when the recorder is disabled)."""
        if not self.enabled:
            return
        record = TraceRecord(time_ns, source, kind, detail)
        self._records.append(record)
        for tap in self._taps:
            tap(record)

    def add_tap(self, tap: Callable[[TraceRecord], None]) -> None:
        """Invoke ``tap`` on every future record."""
        self._taps.append(tap)

    def records(self, kind: Optional[str] = None,
                source: Optional[str] = None) -> List[TraceRecord]:
        """Snapshot of records, optionally filtered by kind and/or source."""
        result = self._records
        if kind is not None:
            result = [r for r in result if r.kind == kind]
        if source is not None:
            result = [r for r in result if r.source == source]
        return list(result)

    def iter_kind(self, kind: str) -> Iterator[TraceRecord]:
        """Iterate records of one kind in emission order."""
        return (r for r in self._records if r.kind == kind)

    def clear(self) -> None:
        """Drop all stored records (taps stay registered)."""
        self._records.clear()
