"""Discrete-event simulation engine.

This is the substrate on which the whole reproduction runs: an integer-
nanosecond clock, a binary-heap event queue with deterministic tie-breaking,
periodic timers, and a trace recorder.  It replaces the paper's Linux-router
testbed (see DESIGN.md, substitution table).

Public surface::

    sim = Simulator()
    sim.schedule(delay_ns, callback, arg1, arg2)
    timer = PeriodicTimer(sim, interval_ns, tick_fn)
    timer.start()
    sim.run(until_ns=units.seconds(30))
"""

from repro.sim.events import Event, EventQueue
from repro.sim.simulator import Simulator
from repro.sim.timers import OneShotTimer, PeriodicTimer
from repro.sim.rng import SeededRNG
from repro.sim.trace import TraceLevel, TraceRecorder, TraceRecord

__all__ = [
    "Event",
    "EventQueue",
    "Simulator",
    "OneShotTimer",
    "PeriodicTimer",
    "SeededRNG",
    "TraceLevel",
    "TraceRecorder",
    "TraceRecord",
]
