"""The simulation event loop.

A :class:`Simulator` owns the clock and the event queue.  Devices (links,
switches, hosts) hold a reference to it and schedule their future work
through :meth:`Simulator.schedule`.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.errors import SimulationError
from repro.sim.events import Event, EventQueue
from repro.sim.rng import SeededRNG


class Simulator:
    """Discrete-event simulator with an integer-nanosecond clock.

    Typical use::

        sim = Simulator()
        sim.schedule(1_000, print, "fires at t=1us")
        sim.run(until_ns=units.seconds(1))

    The loop processes events in ``(time, schedule-order)`` order until the
    queue drains, ``until_ns`` is reached, or :meth:`stop` is called from
    inside a callback.

    The simulator also anchors the experiment's :class:`SeededRNG` family:
    any component holding a ``sim`` reference can draw from a named,
    deterministically seeded stream (``sim.rng.stream("impair/sw0->sw1")``)
    without threading an RNG through every constructor.
    """

    def __init__(self, seed: int = 0) -> None:
        self._now_ns = 0
        self._queue = EventQueue()
        self._running = False
        self._stopped = False
        self.events_processed = 0
        #: Named-stream RNG family for every stochastic component in this
        #: simulation (link impairments, probe jitter, workloads).
        self.rng = SeededRNG(seed)

    @property
    def now_ns(self) -> int:
        """Current simulated time in nanoseconds."""
        return self._now_ns

    @property
    def now_seconds(self) -> float:
        """Current simulated time in seconds (for reporting only)."""
        return self._now_ns / 1_000_000_000

    def pending_events(self) -> int:
        """Number of live events still queued.

        Cancelled stragglers awaiting lazy deletion are *not* counted (they
        will never fire); see :meth:`cancelled_pending` for those.
        """
        return self._queue.live_count

    def cancelled_pending(self) -> int:
        """Cancelled events still occupying heap entries (lazy deletion)."""
        return self._queue.cancelled_pending

    def schedule(self, delay_ns: int, callback: Callable[..., None],
                 *args: Any) -> Event:
        """Schedule ``callback(*args)`` to run ``delay_ns`` from now.

        A zero delay is allowed (the event runs later in the current
        instant); a negative delay is a programming error.
        """
        if delay_ns < 0:
            raise SimulationError(
                f"cannot schedule {delay_ns} ns in the past"
                f" at t={self._now_ns}"
            )
        return self._queue.push(self._now_ns + delay_ns, callback, args)

    def schedule_at(self, time_ns: int, callback: Callable[..., None],
                    *args: Any) -> Event:
        """Schedule ``callback(*args)`` at absolute time ``time_ns``."""
        if time_ns < self._now_ns:
            raise SimulationError(
                f"cannot schedule at t={time_ns}, already at t={self._now_ns}"
            )
        return self._queue.push(time_ns, callback, args)

    def stop(self) -> None:
        """Request the run loop to exit after the current event."""
        self._stopped = True

    def run(self, until_ns: Optional[int] = None) -> int:
        """Process events until the queue drains or ``until_ns`` is reached.

        Events scheduled exactly at ``until_ns`` are **not** processed (the
        horizon is exclusive), but the clock is advanced to ``until_ns`` so
        consecutive ``run`` calls compose:  ``run(t1); run(t2)`` is the same
        as ``run(t2)``.

        Returns the number of events processed during this call.
        """
        if self._running:
            raise SimulationError("Simulator.run() is not reentrant")
        self._running = True
        self._stopped = False
        processed = 0
        pop_before = self._queue.pop_before
        try:
            while not self._stopped:
                event = pop_before(until_ns)
                if event is None:
                    break
                self._now_ns = event.time_ns
                # pop_before never returns a cancelled event and nothing can
                # run between the pop and this call, so invoke the callback
                # directly instead of re-checking through Event.fire().
                event.callback(*event.args)
                processed += 1
        finally:
            self._running = False
        if until_ns is not None and not self._stopped:
            self._now_ns = max(self._now_ns, until_ns)
        self.events_processed += processed
        return processed
