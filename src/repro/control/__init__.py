"""Control plane: task memory allocation and edge security.

The paper keeps the control plane deliberately thin: a "control-plane agent
to partition switch SRAM and isolate concurrently executing network tasks"
(§3.2), plus edge enforcement that strips or drops TPPs from untrusted
sources (§4).  Both live here.
"""

from repro.control.agent import ControlPlaneAgent, TaskAllocation
from repro.control.security import EdgeTPPPolicy

__all__ = ["ControlPlaneAgent", "TaskAllocation", "EdgeTPPPolicy"]
