"""The control-plane agent: SRAM partitioning across network tasks.

"We rely on a control-plane agent to partition switch SRAM and isolate
concurrently executing network tasks.  For instance, if end-hosts implement
both RCP and ndb, the agent would allocate a non-overlapping set of SRAM
addresses to RCP and ndb." (§3.2)

The agent manages a fleet of switches uniformly: an allocation reserves the
*same* virtual addresses on every switch (the paper's assumption that
addresses are identical network-wide), registers task mnemonics such as
``Link:RCP-RateRegister`` into the shared memory map, and can initialize
the allocated registers — e.g. RCP's footnote 3: "a control plane program
initializes each link's fair share rate to its capacity".
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Sequence

from repro.asic.switch import TPPSwitch
from repro.core.memory_map import (
    LINK_SCRATCH_BASE,
    LINK_SCRATCH_SLOTS,
    SRAM_BASE,
    SRAM_WORDS,
    MemoryMap,
)
from repro.errors import ConfigurationError


@dataclass
class TaskAllocation:
    """Everything handed to one network task."""

    task_id: int
    name: str
    sram_words: Dict[str, int] = field(default_factory=dict)
    link_slots: Dict[str, int] = field(default_factory=dict)

    def sram_vaddr(self, symbol: str) -> int:
        """Virtual address of an allocated SRAM word."""
        return SRAM_BASE + self.sram_words[symbol]

    def link_vaddr(self, symbol: str) -> int:
        """Virtual address of an allocated per-port scratch register."""
        return LINK_SCRATCH_BASE + self.link_slots[symbol]


class ControlPlaneAgent:
    """Allocates scratch memory uniformly across a set of switches."""

    def __init__(self, switches: Sequence[TPPSwitch],
                 memory_map: Optional[MemoryMap] = None,
                 enforce_isolation: bool = False) -> None:
        self.switches = list(switches)
        self.memory_map = memory_map if memory_map else MemoryMap.standard()
        self._task_ids = itertools.count(1)
        self._next_sram_word = 0
        self._next_link_slot = 0
        self._allocations: Dict[str, TaskAllocation] = {}
        if enforce_isolation:
            for switch in self.switches:
                switch.mmu.enforce_sram_protection = True

    # ------------------------------------------------------------------ #
    # Allocation
    # ------------------------------------------------------------------ #

    def create_task(self, name: str) -> TaskAllocation:
        """Register a task; returns its (initially empty) allocation."""
        if name in self._allocations:
            raise ConfigurationError(f"task {name!r} already exists")
        allocation = TaskAllocation(task_id=next(self._task_ids), name=name)
        self._allocations[name] = allocation
        return allocation

    def task(self, name: str) -> TaskAllocation:
        """The allocation for a task name."""
        return self._allocations[name]

    def allocate_sram(self, task_name: str, symbol: str,
                      n_words: int = 1) -> int:
        """Reserve ``n_words`` of SRAM on every switch; returns the vaddr
        of the first word.  The symbol becomes resolvable as
        ``Sram:<symbol>`` is not created — callers use the returned vaddr
        or the allocation object."""
        allocation = self._allocations[task_name]
        start = self._next_sram_word
        if start + n_words > SRAM_WORDS:
            raise ConfigurationError(
                f"out of SRAM: need {n_words}, "
                f"{SRAM_WORDS - start} words free")
        for switch in self.switches:
            switch.mmu.allocate_sram(start, n_words, allocation.task_id)
        self._next_sram_word += n_words
        allocation.sram_words[symbol] = start
        return SRAM_BASE + start

    def allocate_link_register(self, task_name: str, symbol: str,
                               mnemonic: Optional[str] = None) -> int:
        """Reserve one per-port scratch slot network-wide.

        ``mnemonic`` (e.g. ``"Link:RCP-RateRegister"``) is registered in the
        shared memory map so assembly programs can name the register.
        Returns the virtual address.
        """
        allocation = self._allocations[task_name]
        slot = self._next_link_slot
        if slot >= LINK_SCRATCH_SLOTS:
            raise ConfigurationError("out of per-port scratch registers")
        self._next_link_slot += 1
        allocation.link_slots[symbol] = slot
        vaddr = LINK_SCRATCH_BASE + slot
        if mnemonic is not None:
            self.memory_map.register_symbol(mnemonic, vaddr)
        return vaddr

    def release_task(self, task_name: str) -> None:
        """Free a task's SRAM on every switch (slots are not recycled)."""
        allocation = self._allocations.pop(task_name, None)
        if allocation is None:
            return
        for switch in self.switches:
            switch.mmu.release_sram(allocation.task_id)

    # ------------------------------------------------------------------ #
    # Direct register initialization (control-plane writes)
    # ------------------------------------------------------------------ #

    def initialize_link_register(self, vaddr: int,
                                 value_for_port: Callable[[TPPSwitch, int],
                                                          int]) -> None:
        """Write an initial value into a link register on every port of
        every switch.  ``value_for_port(switch, port_index)`` supplies the
        value — RCP initializes each register to the link's capacity."""
        slot = vaddr - LINK_SCRATCH_BASE
        if not 0 <= slot < LINK_SCRATCH_SLOTS:
            raise ConfigurationError(f"{vaddr:#06x} is not a link register")
        for switch in self.switches:
            for port in switch.ports:
                switch.mmu.poke_link_scratch(
                    port.index, slot, value_for_port(switch, port.index))

    def initialize_sram(self, vaddr: int, value: int) -> None:
        """Write an initial value into an SRAM word on every switch."""
        word = vaddr - SRAM_BASE
        if not 0 <= word < SRAM_WORDS:
            raise ConfigurationError(f"{vaddr:#06x} is not in SRAM")
        for switch in self.switches:
            switch.mmu.poke_sram(word, value)
