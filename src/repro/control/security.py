"""Edge security policy for TPPs (paper §4).

"In multi-tenant or untrusted environments such as public cloud
datacenters, the ingress switches at the network edge (the virtual switch,
or the border routers) can strip TPPs injected by VMs, or those TPPs
received from the Internet."

A policy is attached to a switch (``switch.tpp_policy = policy``) and
consulted once per TPP arrival; it answers one of:

- ``"execute"`` — trusted source, run the TPP on the TCPU;
- ``"forward"`` — carry the TPP but do not execute it here;
- ``"strip"``   — remove the TPP section, forward the encapsulated packet;
- ``"drop"``    — discard the whole packet.
"""

from __future__ import annotations

from typing import Set, Tuple

from repro.core.tpp import TPPSection

VALID_ACTIONS = ("execute", "forward", "strip", "drop")


class EdgeTPPPolicy:
    """Port-granular trust: untrusted ingress ports get their TPPs
    stripped (default) or dropped."""

    def __init__(self, untrusted_action: str = "strip") -> None:
        if untrusted_action not in ("strip", "drop"):
            raise ValueError(
                f"untrusted_action must be strip or drop, "
                f"got {untrusted_action!r}")
        self.untrusted_action = untrusted_action
        self._untrusted: Set[Tuple[str, int]] = set()

    def mark_untrusted(self, switch_name: str, port_index: int) -> None:
        """Declare an edge port untrusted (e.g. it faces a tenant VM)."""
        self._untrusted.add((switch_name, port_index))

    def mark_trusted(self, switch_name: str, port_index: int) -> None:
        """Re-trust a port (no-op if it was never untrusted)."""
        self._untrusted.discard((switch_name, port_index))

    def is_untrusted(self, switch_name: str, port_index: int) -> bool:
        """Whether a port is currently untrusted."""
        return (switch_name, port_index) in self._untrusted

    def action_for(self, switch, in_port: int, tpp: TPPSection) -> str:
        """Policy decision for one TPP arrival (called by the switch)."""
        if (switch.name, in_port) in self._untrusted:
            return self.untrusted_action
        return "execute"


class TaskQuotaPolicy:
    """Executes only TPPs whose task id has been admitted.

    A second, stricter policy useful when the operator wants a whitelist of
    network tasks regardless of ingress port.
    """

    def __init__(self, default_action: str = "strip") -> None:
        if default_action not in ("strip", "drop", "forward"):
            raise ValueError(f"bad default action {default_action!r}")
        self.default_action = default_action
        self._admitted: Set[int] = set()

    def admit(self, task_id: int) -> None:
        """Allow TPPs carrying this task id to execute."""
        self._admitted.add(task_id)

    def revoke(self, task_id: int) -> None:
        """Stop executing TPPs of this task id."""
        self._admitted.discard(task_id)

    def action_for(self, switch, in_port: int, tpp: TPPSection) -> str:
        if tpp.task_id in self._admitted:
            return "execute"
        return self.default_action
