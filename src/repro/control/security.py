"""Edge security policy for TPPs (paper §4).

"In multi-tenant or untrusted environments such as public cloud
datacenters, the ingress switches at the network edge (the virtual switch,
or the border routers) can strip TPPs injected by VMs, or those TPPs
received from the Internet."

A policy is attached to a switch (``switch.tpp_policy = policy``) and
consulted once per TPP arrival; it answers one of:

- ``"execute"`` — trusted source, run the TPP on the TCPU;
- ``"forward"`` — carry the TPP but do not execute it here;
- ``"strip"``   — remove the TPP section, forward the encapsulated packet;
- ``"drop"``    — discard the whole packet.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional, Set, Tuple

from repro.core.memory_map import MemoryMap
from repro.core.racecheck import FleetRaceTable, summarize_certificate
from repro.core.tcpu import DEFAULT_MAX_INSTRUCTIONS, RACE_MODES
from repro.core.tpp import TPPSection
from repro.core.verifier import verify_section

VALID_ACTIONS = ("execute", "forward", "strip", "drop")


class EdgeTPPPolicy:
    """Port-granular trust: untrusted ingress ports get their TPPs
    stripped (default) or dropped."""

    def __init__(self, untrusted_action: str = "strip") -> None:
        if untrusted_action not in ("strip", "drop"):
            raise ValueError(
                f"untrusted_action must be strip or drop, "
                f"got {untrusted_action!r}")
        self.untrusted_action = untrusted_action
        self._untrusted: Set[Tuple[str, int]] = set()

    def mark_untrusted(self, switch_name: str, port_index: int) -> None:
        """Declare an edge port untrusted (e.g. it faces a tenant VM)."""
        self._untrusted.add((switch_name, port_index))

    def mark_trusted(self, switch_name: str, port_index: int) -> None:
        """Re-trust a port (no-op if it was never untrusted)."""
        self._untrusted.discard((switch_name, port_index))

    def is_untrusted(self, switch_name: str, port_index: int) -> bool:
        """Whether a port is currently untrusted."""
        return (switch_name, port_index) in self._untrusted

    def action_for(self, switch, in_port: int, tpp: TPPSection) -> str:
        """Policy decision for one TPP arrival (called by the switch)."""
        if (switch.name, in_port) in self._untrusted:
            return self.untrusted_action
        return "execute"


class TaskQuotaPolicy:
    """Executes only TPPs whose task id has been admitted.

    A second, stricter policy useful when the operator wants a whitelist of
    network tasks regardless of ingress port.
    """

    def __init__(self, default_action: str = "strip") -> None:
        if default_action not in ("strip", "drop", "forward"):
            raise ValueError(f"bad default action {default_action!r}")
        self.default_action = default_action
        self._admitted: Set[int] = set()

    def admit(self, task_id: int) -> None:
        """Allow TPPs carrying this task id to execute."""
        self._admitted.add(task_id)

    def revoke(self, task_id: int) -> None:
        """Stop executing TPPs of this task id."""
        self._admitted.discard(task_id)

    def action_for(self, switch, in_port: int, tpp: TPPSection) -> str:
        if tpp.task_id in self._admitted:
            return "execute"
        return self.default_action


class VerifierPolicy:
    """Static verification at untrusted edge ports.

    The stricter sibling of :class:`EdgeTPPPolicy`: instead of refusing
    *all* TPPs from an untrusted port, it runs each arriving program
    through the static verifier (:mod:`repro.core.verifier`) and only
    lets provably-safe ones execute — unverifiable TPPs are stripped
    (default) or dropped.  Verdicts are memoized by program fingerprint
    and memory geometry, so a probe stream pays for one analysis.

    With ``trust_on_admit`` (default), an admitted program's certificate
    is pushed to the switch's TCPU (:meth:`repro.core.tcpu.TCPU.trust`),
    so edge admission feeds the verified fast path for every downstream
    execution of the same program on that switch.

    Beyond the single-program verdict, the policy keeps a fleet-level
    race table (:class:`~repro.core.racecheck.FleetRaceTable`) over every
    admitted certificate: each admission is incrementally checked against
    the programs already in the fleet for SRAM races
    (``TPP020``–``TPP023``).  ``race_mode="warn"`` (default) admits racy
    programs but surfaces the conflicts via :meth:`race_report`;
    ``"enforce"`` applies ``untrusted_action`` to arrivals whose program
    races with an admitted one; ``"off"`` skips the fleet pass.  A racy
    program becomes admissible again once its rival is retired with
    :meth:`revoke` — the re-analysis runs per arrival.
    """

    def __init__(self, untrusted_action: str = "strip",
                 memory_map: Optional[MemoryMap] = None,
                 max_instructions: int = DEFAULT_MAX_INSTRUCTIONS,
                 trust_on_admit: bool = True,
                 cache_size: int = 256,
                 race_mode: str = "warn") -> None:
        if untrusted_action not in ("strip", "drop", "forward"):
            raise ValueError(
                f"untrusted_action must be strip, drop or forward, "
                f"got {untrusted_action!r}")
        if race_mode not in RACE_MODES:
            raise ValueError(
                f"race_mode must be one of {RACE_MODES}, "
                f"got {race_mode!r}")
        self.untrusted_action = untrusted_action
        self.memory_map = memory_map
        self.max_instructions = max_instructions
        self.trust_on_admit = trust_on_admit
        self.race_mode = race_mode
        self._untrusted: Set[Tuple[str, int]] = set()
        self._verdicts: "OrderedDict[tuple, object]" = OrderedDict()
        self._cache_size = cache_size
        self.tpps_verified = 0
        self.tpps_admitted = 0
        self.tpps_rejected = 0
        #: Arrivals whose program participated in an error-severity race
        #: at decision time (counted per arrival, like the others).
        self.tpps_racy = 0
        #: Fleet race table over admitted certificates.
        self.fleet = FleetRaceTable()

    def mark_untrusted(self, switch_name: str, port_index: int) -> None:
        """Verify TPPs arriving on this port before they may execute."""
        self._untrusted.add((switch_name, port_index))

    def mark_trusted(self, switch_name: str, port_index: int) -> None:
        """Re-trust a port (no-op if it was never untrusted)."""
        self._untrusted.discard((switch_name, port_index))

    def is_untrusted(self, switch_name: str, port_index: int) -> bool:
        """Whether a port currently requires verification."""
        return (switch_name, port_index) in self._untrusted

    def action_for(self, switch, in_port: int, tpp: TPPSection) -> str:
        """Policy decision for one TPP arrival (called by the switch)."""
        if (switch.name, in_port) not in self._untrusted:
            return "execute"
        result = self._verdict(tpp)
        if not result.ok:
            self.tpps_rejected += 1
            return self.untrusted_action
        certificate = result.certificate
        if certificate is not None and self.race_mode != "off":
            # Re-evaluated per arrival (admit is idempotent for a fleet
            # member), so a previously-racy program is re-admitted the
            # moment its rival has been revoked.
            diagnostics = self.fleet.admit(
                summarize_certificate(certificate))
            if any(d.severity == "error" for d in diagnostics):
                self.tpps_racy += 1
                if self.race_mode == "enforce":
                    self.fleet.revoke(certificate)
                    self.tpps_rejected += 1
                    return self.untrusted_action
        self.tpps_admitted += 1
        # Pushed per arrival, not per verdict: one shared policy can
        # guard several switches, and TCPU.trust is idempotent for a
        # certificate it already holds.
        if (self.trust_on_admit and certificate is not None
                and getattr(switch, "tcpu", None) is not None):
            switch.tcpu.trust(certificate)
        return "execute"

    def revoke(self, certificate, switch=None) -> bool:
        """Retire an admitted program from the fleet race table.

        Optionally also distrusts it on a switch's TCPU.  Accepts a
        certificate (or anything with ``program_key``/``task_id``).
        Returns whether the program was a fleet member.
        """
        removed = self.fleet.revoke(certificate)
        if switch is not None and getattr(switch, "tcpu", None) is not None:
            switch.tcpu.distrust(certificate)
        return removed

    def race_report(self) -> str:
        """Human-readable fleet race summary (diagnostics + counters)."""
        report = self.fleet.report()
        return (f"{report.format()}\n"
                f"mode {self.race_mode}: {self.tpps_racy} racy "
                f"arrival(s), {self.fleet.pair_checks} incremental "
                f"pair check(s)")

    def _verdict(self, tpp: TPPSection):
        # task_id is part of the key: the verdict and the certificate's
        # SRAM-isolation facts (TPP007) depend on which task the program
        # runs as, not just its wire bytes and geometry.
        key = (tpp.program_key, tpp.task_id, len(tpp.memory),
               tpp.perhop_len_bytes)
        cached = self._verdicts.get(key)
        if cached is not None:
            self._verdicts.move_to_end(key)
            return cached
        self.tpps_verified += 1
        result = verify_section(
            tpp, memory_map=self.memory_map,
            max_instructions=self.max_instructions)
        self._verdicts[key] = result
        while len(self._verdicts) > self._cache_size:
            self._verdicts.popitem(last=False)
        return result
