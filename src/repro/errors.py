"""Exception hierarchy shared by every subsystem.

All errors raised by this package derive from :class:`ReproError` so callers
can catch everything library-specific with one ``except`` clause.  Each
subsystem defines narrower subclasses next to the code that raises them
(e.g. :class:`repro.core.exceptions.TCPUFault`), all rooted here.
"""


class ReproError(Exception):
    """Base class for every error raised by the ``repro`` package."""


class SimulationError(ReproError):
    """The discrete-event engine was used incorrectly.

    Examples: scheduling an event in the past, or running a simulator that
    was already stopped.
    """


class ConfigurationError(ReproError):
    """A device, topology or experiment was configured inconsistently."""


class WireFormatError(ReproError):
    """Bytes on the wire could not be parsed as the expected header."""
