"""Per-port statistics maintenance: utilization EWMAs and queue averages.

The ASIC "already keeps track of per-port, per-queue occupancies in its
registers" (§2.1); what it additionally maintains for RCP-style control is
smoothed link utilization and average queue size.  These are computed by a
periodic sampler:

- :class:`UtilizationMeter` — EWMA of a byte counter's growth rate,
  expressed in milli-fractions of the line rate (integer, because TPPs move
  integer words).  ``Link:RX-Utilization`` measures *offered load into the
  egress link* (bytes admitted to the queue plus bytes dropped at it, i.e.
  y(t) in the RCP control equation), and ``Link:TX-Utilization`` measures
  the drain rate.
- :class:`QueueAverager` — EWMA of instantaneous queue occupancy in bytes
  (q(t) in the RCP equation).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.net.port import Port
from repro.sim.simulator import Simulator
from repro.sim.timers import PeriodicTimer

DEFAULT_STATS_INTERVAL_NS = 1_000_000  # 1 ms
DEFAULT_EWMA_ALPHA = 0.5


class UtilizationMeter:
    """EWMA of a cumulative byte counter's rate, in milli-line-rate."""

    def __init__(self, counter: Callable[[], int], rate_bps: int,
                 alpha: float = DEFAULT_EWMA_ALPHA) -> None:
        if not 0.0 < alpha <= 1.0:
            raise ValueError(f"alpha must be in (0, 1], got {alpha}")
        self._counter = counter
        self._rate_bps = rate_bps
        self._alpha = alpha
        self._last_count = counter()
        self._utilization = 0.0

    @property
    def utilization(self) -> float:
        """Current EWMA utilization as a fraction of line rate."""
        return self._utilization

    @property
    def utilization_milli(self) -> int:
        """Integer milli-fraction exported to the TPP address space."""
        return round(self._utilization * 1000)

    def sample(self, interval_ns: int) -> float:
        """Fold in the bytes accumulated since the previous sample."""
        count = self._counter()
        delta_bytes = count - self._last_count
        self._last_count = count
        interval_s = interval_ns / 1e9
        instantaneous = (delta_bytes * 8 / interval_s) / self._rate_bps
        self._utilization += self._alpha * (instantaneous - self._utilization)
        return self._utilization


class QueueAverager:
    """EWMA of instantaneous queue occupancy in bytes."""

    def __init__(self, occupancy: Callable[[], int],
                 alpha: float = DEFAULT_EWMA_ALPHA) -> None:
        if not 0.0 < alpha <= 1.0:
            raise ValueError(f"alpha must be in (0, 1], got {alpha}")
        self._occupancy = occupancy
        self._alpha = alpha
        self._average = 0.0

    @property
    def average_bytes(self) -> int:
        """Current EWMA occupancy, rounded to whole bytes."""
        return round(self._average)

    def sample(self) -> float:
        """Fold in the current instantaneous occupancy."""
        self._average += self._alpha * (self._occupancy() - self._average)
        return self._average


class PortStats:
    """All smoothed statistics for one port (aggregated over its queues,
    plus one occupancy averager per queue)."""

    def __init__(self, port: Port, alpha: float) -> None:
        self.rx_utilization = UtilizationMeter(
            port.offered_bytes, port.rate_bps, alpha)
        self.tx_utilization = UtilizationMeter(
            lambda: port.tx_bytes, port.rate_bps, alpha)
        self.per_queue_avg = [
            QueueAverager(
                (lambda q: lambda: q.occupancy_bytes)(queue), alpha)
            for queue in port.queues
        ]

    @property
    def avg_queue(self) -> QueueAverager:
        """The default queue's averager (single-queue view)."""
        return self.per_queue_avg[0]

    def avg_queue_for(self, queue_id: int) -> QueueAverager:
        """The averager for a specific egress queue."""
        return self.per_queue_avg[min(queue_id,
                                      len(self.per_queue_avg) - 1)]

    def sample(self, interval_ns: int) -> None:
        self.rx_utilization.sample(interval_ns)
        self.tx_utilization.sample(interval_ns)
        for averager in self.per_queue_avg:
            averager.sample()


class SwitchStats:
    """Periodic sampler that owns the per-port statistics of one switch.

    Created lazily by :meth:`repro.asic.switch.TPPSwitch.start_stats` once
    the switch's ports exist.
    """

    def __init__(self, sim: Simulator, ports: List[Port],
                 interval_ns: int = DEFAULT_STATS_INTERVAL_NS,
                 alpha: float = DEFAULT_EWMA_ALPHA,
                 fastpath: Optional[Callable[[], Dict]] = None) -> None:
        self.interval_ns = interval_ns
        self._per_port: Dict[int, PortStats] = {
            port.index: PortStats(port, alpha) for port in ports
        }
        #: Snapshot callable for the switch's execution fast path (program
        #: cache + accessor counters); wired up by ``start_stats`` so the
        #: sampler is the one-stop shop for a switch's health numbers.
        self._fastpath = fastpath
        self._timer = PeriodicTimer(sim, interval_ns, self._tick)

    def start(self) -> None:
        """Begin sampling every ``interval_ns``."""
        self._timer.start()

    def stop(self) -> None:
        """Stop sampling (values freeze at their last EWMA)."""
        self._timer.stop()

    def port(self, index: int) -> PortStats:
        """The statistics block for a port index."""
        return self._per_port[index]

    @property
    def fastpath(self) -> Dict:
        """Current fast-path counters (empty when no snapshot callable
        was wired up, e.g. for a bare sampler built in tests)."""
        if self._fastpath is None:
            return {}
        return self._fastpath()

    def _tick(self) -> None:
        for stats in self._per_port.values():
            stats.sample(self.interval_ns)
