"""The switch ASIC dataplane pipeline (paper Figure 3).

A packet entering a :class:`~repro.asic.switch.TPPSwitch` flows through the
same simplified block diagram the paper draws:

1. RX accounting (the PHY / ingress dataplane module);
2. the header parser (:mod:`repro.asic.parser`);
3. the forwarding lookup — TCAM, then L2 exact match, then L3 LPM
   (:mod:`repro.asic.tables`), which stamps per-packet metadata
   (:mod:`repro.asic.metadata`);
4. the TCPU (:mod:`repro.core.tcpu`), placed after the lookup stages and
   before the packet is stored in switch memory;
5. the egress queue and scheduler (:mod:`repro.net.port`).

Per-port statistics (utilization EWMAs, queue averages — Table 2) are
maintained by :mod:`repro.asic.stats` and exposed to TPPs through the MMU.
"""

from repro.asic.metadata import PacketMetadata
from repro.asic.parser import ParsedHeaders, parse_frame
from repro.asic.tables import (
    EntryAllocator,
    L2Table,
    L3Table,
    LookupResult,
    Tcam,
    TcamRule,
)
from repro.asic.stats import QueueAverager, SwitchStats, UtilizationMeter
from repro.asic.switch import TPPSwitch

__all__ = [
    "PacketMetadata",
    "ParsedHeaders",
    "parse_frame",
    "EntryAllocator",
    "L2Table",
    "L3Table",
    "LookupResult",
    "Tcam",
    "TcamRule",
    "QueueAverager",
    "SwitchStats",
    "UtilizationMeter",
    "TPPSwitch",
]
