"""Per-packet metadata registers (paper Table 2, "Per-Packet").

"In its registers, the ASIC keeps metadata such as input port, the selected
route, etc. for every packet" (§3.2.1).  The pipeline fills one of these in
for every packet; the MMU maps the ``PacketMetadata:`` namespace onto it.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(slots=True)
class PacketMetadata:
    """Registers describing the packet currently in the pipeline."""

    input_port: int = 0
    output_port: int = 0
    matched_entry_id: int = 0
    matched_entry_version: int = 0
    matched_entry_hits: int = 0
    queue_id: int = 0
    packet_length: int = 0
    arrival_time_ns: int = 0
    alternate_routes: int = 0
