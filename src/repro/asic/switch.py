"""The TPP-capable switch: Figure 3's pipeline around a TCPU.

Stages on packet arrival (see package docs): RX accounting, header parsing,
forwarding lookup (TCAM > L2 > L3), metadata stamping, TPP execution, then
enqueue on the egress port after a fixed pipeline latency.

The TCPU is deliberately placed *after* the lookup stages and *before* the
packet is stored in switch memory, so a TPP observes the queue it is about
to join and all packet modifications are committed before buffering —
"all modifications to the packet are in local buffers ... committed to the
packet before it is copied to switch memory" (§3.3).
"""

from __future__ import annotations

import zlib
from typing import Any, Callable, Optional

from repro.asic.metadata import PacketMetadata
from repro.asic.parser import ParsedHeaders, parse_frame
from repro.asic.stats import (
    DEFAULT_EWMA_ALPHA,
    DEFAULT_STATS_INTERVAL_NS,
    PortStats,
    SwitchStats,
)
from repro.asic.tables import (
    EntryAllocator,
    L2Entry,
    L2Table,
    L3Entry,
    L3Table,
    LookupResult,
    Tcam,
    TcamRule,
)
from repro.core.memory_map import MemoryMap
from repro.core.mmu import MMU, ExecutionContext
from repro.core.tcpu import DEFAULT_MAX_INSTRUCTIONS, TCPU
from repro.core.tpp import TPPSection
from repro.net.device import Device
from repro.net.packet import ETHERTYPE_IPV4, Datagram, EthernetFrame
from repro.sim.simulator import Simulator
from repro.sim.trace import TraceRecorder

#: Fixed pipeline latency between arrival and egress enqueue.  The paper
#: quotes ~300 ns cut-through for low-latency ASICs; we default to 500 ns
#: for a store-and-forward pipeline.
DEFAULT_PIPELINE_LATENCY_NS = 500


class TPPSwitch(Device):
    """A switch with L2/L3/TCAM forwarding and a dataplane TCPU."""

    # Links announce scheduled deliveries in our ``inbound_at`` ledger so
    # receive() can defer same-instant frames into one TCPU batch.
    batches_ingress = True

    def __init__(self, sim: Simulator, name: str, switch_id: int,
                 mac: int = 0, trace: Optional[TraceRecorder] = None,
                 memory_map: Optional[MemoryMap] = None,
                 max_tpp_instructions: int = DEFAULT_MAX_INSTRUCTIONS,
                 pipeline_latency_ns: int = DEFAULT_PIPELINE_LATENCY_NS,
                 tpp_enabled: bool = True) -> None:
        super().__init__(sim, name, trace)
        self.switch_id = switch_id
        self.mac = mac
        self.pipeline_latency_ns = pipeline_latency_ns
        self.tpp_enabled = tpp_enabled

        self.mmu = MMU(memory_map, name=name)
        # The switch knows its own SwitchID, so its TCPU's race table can
        # discount accesses behind constant fences that never pass here.
        try:
            fence_values = {
                self.mmu.memory_map.resolve("Switch:SwitchID"): switch_id}
        except KeyError:  # pragma: no cover - custom maps may omit it
            fence_values = None
        self.tcpu = TCPU(self.mmu, max_tpp_instructions,
                         name=f"{name}.tcpu", fence_values=fence_values)

        allocator = EntryAllocator()
        self._allocator = allocator
        self.l2 = L2Table(allocator)
        self.l3 = L3Table(allocator)
        self.tcam = Tcam(allocator)

        self.stats: Optional[SwitchStats] = None
        #: Edge security policy (see repro.control.security); ``None``
        #: means every port is trusted.
        self.tpp_policy: Any = None
        #: Dataplane extension hooks invoked for every forwarded datagram
        #: as ``hook(frame, datagram, metadata, egress_port)``.  This is
        #: how the in-network RCP baseline stamps fair-share rates — the
        #: kind of baked-in ASIC feature TPPs make unnecessary.
        self.datagram_hooks: list = []

        # Pipeline counters.
        self.packets_switched = 0
        self.packets_dropped_no_route = 0
        self.packets_dropped_by_rule = 0
        self.tpps_stripped = 0
        self.tpps_dropped = 0

        # Ingress buffer for the zero-delay drain event (see receive()).
        self._ingress: list = []
        self._drain_scheduled = False

        self._bind_memory_map()

    # ------------------------------------------------------------------ #
    # Control-plane configuration
    # ------------------------------------------------------------------ #

    def install_l2_route(self, dst_mac: int, out_port: int) -> L2Entry:
        """Install/replace the unicast route for a MAC."""
        return self.l2.install(dst_mac, out_port)

    def install_l3_route(self, prefix: int, prefix_len: int,
                         out_port: int) -> L3Entry:
        """Install an IPv4 prefix route."""
        return self.l3.install(prefix, prefix_len, out_port)

    def install_tcam_rule(self, rule: TcamRule) -> TcamRule:
        """Install a ternary override rule."""
        return self.tcam.install(rule)

    def start_stats(self, interval_ns: int = DEFAULT_STATS_INTERVAL_NS,
                    alpha: float = DEFAULT_EWMA_ALPHA) -> SwitchStats:
        """Start the periodic statistics sampler over the current ports."""
        self.stats = SwitchStats(self.sim, self.ports, interval_ns, alpha,
                                 fastpath=self.fastpath_stats)
        self.stats.start()
        return self.stats

    def fastpath_stats(self) -> dict:
        """Counters for the compile-once execution fast path.

        Program-cache hits/misses/evictions/invalidations from the TCPU,
        plus the MMU's accessor-resolution count and layout version —
        enough to answer "is the cache actually warm?" without attaching
        a profiler.
        """
        stats = dict(self.tcpu.cache.stats())
        stats["compile_enabled"] = self.tcpu.compile_enabled
        stats["accessor_resolutions"] = self.mmu.accessor_resolutions
        stats["layout_version"] = self.mmu.layout_version
        stats["certificates"] = self.tcpu.certificates
        stats["verified_executions"] = self.tcpu.verified_executions
        stats["batch_enabled"] = self.tcpu.batch_enabled
        stats["batches_executed"] = self.tcpu.batches_executed
        stats["batched_tpps"] = self.tcpu.batched_tpps
        stats["vector_batches"] = self.tcpu.vector_batches
        stats["vector_tpps"] = self.tcpu.vector_tpps
        stats["vector_write_batches"] = self.tcpu.vector_write_batches
        stats["vector_write_tpps"] = self.tcpu.vector_write_tpps
        stats["batch_fallbacks"] = self.tcpu.batch_fallbacks
        stats["batch_occupancy"] = dict(self.tcpu.batch_occupancy)
        stats["batch_demotions"] = dict(self.tcpu.batch_demotions)
        return stats

    def emit_fastpath_summary(self) -> dict:
        """Emit one ``fastpath.summary`` INFO trace record and return the
        counter snapshot (for end-of-run reporting, mirroring how
        ``reliability_report`` consumes link/endpoint counters)."""
        stats = self.fastpath_stats()
        if self.trace.wants("fastpath.summary"):
            self.trace.emit(self.sim.now_ns, self.name, "fastpath.summary",
                            **stats)
        return stats

    # ------------------------------------------------------------------ #
    # Dataplane
    # ------------------------------------------------------------------ #

    def receive(self, frame: EthernetFrame, in_port: int) -> None:
        """RX accounting at arrival; when more frames are due this
        instant (per the link layer's ``inbound_at`` ledger) the
        pipeline is deferred to a zero-delay drain event so same-ns
        frames across any ports can be executed as one TCPU batch.  A
        lone arrival — the steady state — runs the pipeline inline with
        no event overhead.

        The event queue is FIFO at equal timestamps, so every same-ns
        ``receive`` lands before the drain fires and per-frame latency
        is unchanged: egress enqueue still happens at arrival +
        ``pipeline_latency_ns``.
        """
        self.ports[in_port].note_rx(frame)
        if not self._ingress and not self.inbound_now:
            # Inline fast path: the delivering link counts announced
            # arrivals and sets ``inbound_now`` to how many *other*
            # frames are still due this instant — zero proves no
            # same-ns peer can arrive, so batching is impossible and
            # the deferred drain would be pure event overhead.  This is
            # ``_process_parsed``, unrolled: the lone-arrival steady
            # state is the wall-clock-critical path.
            headers = parse_frame(frame)
            looked = self._ingress_metadata(frame, in_port, headers)
            if looked is None:
                return
            result, metadata = looked
            if headers.tpp is not None:
                forwarded = self._handle_tpp(frame, headers.tpp, metadata,
                                             in_port)
                if forwarded is None:
                    return
                frame = forwarded
            self._finalize(frame, result, metadata)
            return
        self._ingress.append((frame, in_port))
        if not self._drain_scheduled:
            self._drain_scheduled = True
            self.sim.schedule(0, self._drain_ingress)

    def _drain_ingress(self) -> None:
        """Process everything that arrived this instant.

        Maximal *consecutive* runs of TPP frames sharing a
        ``program_key`` go through :meth:`TCPU.execute_batch`
        (amortized parse/lookup/guard, vectorized when eligible);
        singletons and non-TPP frames take the scalar path.  Arrival
        order is preserved across runs — drops, traces, hop stamps and
        egress enqueues happen in the same per-frame order the scalar
        pipeline would produce (only same-timestamp interleavings of
        the TPPsExecuted/PacketsSwitched counters differ, which is why
        those two registers are not batch-stable).
        """
        self._drain_scheduled = False
        buffered, self._ingress = self._ingress, []
        parsed = [(frame, in_port, parse_frame(frame))
                  for frame, in_port in buffered]
        i = 0
        n = len(parsed)
        while i < n:
            frame, in_port, headers = parsed[i]
            tpp = headers.tpp
            if tpp is None:
                self._process_parsed(frame, in_port, headers)
                i += 1
                continue
            j = i + 1
            key = tpp.program_key
            while j < n:
                next_tpp = parsed[j][2].tpp
                if next_tpp is None or next_tpp.program_key != key:
                    break
                j += 1
            if j - i == 1:
                self._process_parsed(frame, in_port, headers)
            else:
                self._process_run(parsed[i:j])
            i = j

    def _process_parsed(self, frame: EthernetFrame, in_port: int,
                        headers: ParsedHeaders) -> None:
        """The scalar pipeline for one already-parsed frame."""
        looked = self._ingress_metadata(frame, in_port, headers)
        if looked is None:
            return
        result, metadata = looked

        if headers.tpp is not None:
            forwarded = self._handle_tpp(frame, headers.tpp, metadata,
                                         in_port)
            if forwarded is None:
                return
            frame = forwarded

        self._finalize(frame, result, metadata)

    def _process_run(self, run: list) -> None:
        """Pipeline a run of same-``program_key`` TPP frames as a batch.

        Phase A walks the run in arrival order doing everything scalar
        (lookup, drops, metadata, edge policy); survivors that want
        execution stage their section + context.  Phase B executes the
        staged group in one ``execute_batch`` call.  Phase C finalizes
        every surviving frame in arrival order, so hook invocation,
        ``packets_switched``, hop stamps and egress enqueues interleave
        exactly as the scalar pipeline's would.
        """
        staged = []  # (frame, result, metadata, tpp-or-None) in order
        sections: list = []
        ctxs: list = []
        for frame, in_port, headers in run:
            tpp = headers.tpp
            looked = self._ingress_metadata(frame, in_port, headers)
            if looked is None:
                continue
            result, metadata = looked
            forwarded, execute = self._apply_tpp_policy(frame, tpp, in_port)
            if forwarded is None:
                continue
            if not execute:
                staged.append((forwarded, result, metadata, None))
                continue
            ctx = ExecutionContext(
                metadata=metadata,
                egress_port=self.ports[metadata.output_port],
                time_ns=self.sim.now_ns,
                task_id=tpp.task_id)
            sections.append(tpp)
            ctxs.append(ctx)
            staged.append((forwarded, result, metadata, tpp))

        reports = (self.tcpu.execute_batch(sections, ctxs)
                   if sections else [])

        index = 0
        for frame, result, metadata, tpp in staged:
            if tpp is not None:
                self._emit_tpp_exec(frame, tpp, reports[index])
                index += 1
            self._finalize(frame, result, metadata)

    def _ingress_metadata(self, frame: EthernetFrame, in_port: int,
                          headers: ParsedHeaders):
        """Forwarding lookup + metadata stamp; ``None`` means dropped."""
        result = self._lookup(headers, in_port)
        if result is None:
            self.packets_dropped_no_route += 1
            self.trace.emit(self.sim.now_ns, self.name, "switch.no_route",
                            frame_uid=frame.uid, dst=frame.dst)
            return None
        if result.is_drop:
            self.packets_dropped_by_rule += 1
            self.trace.emit(self.sim.now_ns, self.name, "switch.rule_drop",
                            frame_uid=frame.uid, entry_id=result.entry_id)
            return None

        queue_id = self._classify_queue(headers, result)
        metadata = PacketMetadata(
            input_port=in_port,
            output_port=result.out_port,
            matched_entry_id=result.entry_id,
            matched_entry_version=result.version,
            matched_entry_hits=self._entry_hits(result),
            queue_id=queue_id,
            packet_length=frame.size_bytes,
            arrival_time_ns=self.sim.now_ns,
            alternate_routes=result.alternate_routes,
        )
        return result, metadata

    def _finalize(self, frame: EthernetFrame, result: LookupResult,
                  metadata: PacketMetadata) -> None:
        """Post-TCPU stages: datagram hooks, counters, egress enqueue."""
        if self.datagram_hooks:
            datagram = self._find_datagram(frame)
            if datagram is not None:
                egress_port = self.ports[result.out_port]
                for hook in self.datagram_hooks:
                    hook(frame, datagram, metadata, egress_port)
                # Hooks may legally grow the datagram (e.g. attach a
                # congestion shim header), so the cached wire size is stale.
                frame.invalidate_size_cache()

        self.packets_switched += 1
        frame.hops.append(self.name)
        egress = self.ports[result.out_port]
        self.sim.schedule(self.pipeline_latency_ns, egress.enqueue, frame,
                          metadata.queue_id)

    def _classify_queue(self, headers: ParsedHeaders,
                        result: LookupResult) -> int:
        """Egress queue selection: a TCAM set-queue action wins, else the
        packet's IP traffic class, clamped to the port's queue count."""
        queue_id = (result.queue_id if result.queue_id is not None
                    else headers.tos)
        egress = self.ports[result.out_port]
        return min(queue_id, egress.n_queues - 1)

    def _entry_hits(self, result: LookupResult) -> int:
        """Match counter of the entry that just forwarded the packet."""
        if result.table == "l2":
            return self.l2.hit_counts.get(result.entry_id, 0)
        if result.table == "l3":
            return self.l3.hit_counts.get(result.entry_id, 0)
        if result.table == "tcam":
            return self.tcam.hit_counts.get(result.entry_id, 0)
        return 0

    @staticmethod
    def _find_datagram(frame: EthernetFrame) -> Optional[Datagram]:
        payload = frame.payload
        if isinstance(payload, TPPSection):
            payload = payload.payload
        return payload if isinstance(payload, Datagram) else None

    def _lookup(self, headers: ParsedHeaders,
                in_port: int) -> Optional[LookupResult]:
        """TCAM first, then L2 exact match, then L3 LPM (Figure 3)."""
        result = self.tcam.lookup(headers, in_port)
        if result is not None:
            return result
        result = self.l2.lookup(headers.dst_mac,
                                flow_hash=self._flow_hash(headers))
        if result is not None:
            return result
        return self.l3.lookup(headers.dst_ip)

    @staticmethod
    def _flow_hash(headers: ParsedHeaders) -> int:
        """Stable 5-tuple hash for ECMP next-hop selection."""
        key = (f"{headers.src_mac}|{headers.dst_mac}|{headers.src_ip}|"
               f"{headers.dst_ip}|{headers.ip_protocol}|"
               f"{headers.src_port}|{headers.dst_port}").encode()
        return zlib.crc32(key)

    def _apply_tpp_policy(self, frame: EthernetFrame, tpp: TPPSection,
                          in_port: int
                          ) -> "tuple[Optional[EthernetFrame], bool]":
        """Edge policy for one TPP frame.

        Returns ``(frame, execute)``: the (possibly stripped) frame to
        keep forwarding — ``None`` if it must be dropped — and whether
        the TCPU should execute the section.
        """
        action = "execute"
        if self.tpp_policy is not None:
            action = self.tpp_policy.action_for(self, in_port, tpp)

        if action == "drop":
            self.tpps_dropped += 1
            self.trace.emit(self.sim.now_ns, self.name, "tpp.dropped",
                            frame_uid=frame.uid, port=in_port)
            return None, False
        if action == "strip":
            self.tpps_stripped += 1
            self.trace.emit(self.sim.now_ns, self.name, "tpp.stripped",
                            frame_uid=frame.uid, port=in_port)
            inner = tpp.payload
            if isinstance(inner, Datagram):
                frame.payload = inner
                frame.ethertype = ETHERTYPE_IPV4
                frame.invalidate_size_cache()
                return frame, False
            return None, False  # nothing forwardable inside
        if action == "forward":
            return frame, False  # forward without executing
        return frame, self.tpp_enabled

    def _handle_tpp(self, frame: EthernetFrame, tpp: TPPSection,
                    metadata: PacketMetadata,
                    in_port: int) -> Optional[EthernetFrame]:
        """Apply edge policy, then execute the TPP on the TCPU."""
        forwarded, execute = self._apply_tpp_policy(frame, tpp, in_port)
        if forwarded is None or not execute:
            return forwarded

        ctx = ExecutionContext(metadata=metadata,
                               egress_port=self.ports[metadata.output_port],
                               time_ns=self.sim.now_ns,
                               task_id=tpp.task_id)
        report = self.tcpu.execute(tpp, ctx)
        self._emit_tpp_exec(forwarded, tpp, report)
        return forwarded

    def _emit_tpp_exec(self, frame: EthernetFrame, tpp: TPPSection,
                       report: Any) -> None:
        # wants() guard: snapshotting packet memory (tpp.words()) and
        # building the kwargs dict is the expensive part — skip it all
        # when nobody records tpp.exec.
        if self.trace.wants("tpp.exec"):
            self.trace.emit(
                self.sim.now_ns, self.name, "tpp.exec",
                frame_uid=frame.uid, seq=tpp.seq, task=tpp.task_id,
                executed=report.executed, skipped=report.skipped,
                fault=int(report.fault), cycles=report.cycles,
                sp_or_hop=tpp.hop_or_sp, memory_words=tpp.words(),
            )

    # ------------------------------------------------------------------ #
    # Memory map bindings
    # ------------------------------------------------------------------ #

    def _bind_memory_map(self) -> None:
        # Statistics cannot change while a batch runs (the drain event is
        # synchronous: no enqueue/dequeue/control-plane event can fire
        # mid-batch), so nearly every reader is batch-stable.  The two
        # exceptions are the self-counters the TCPU and pipeline bump
        # *per packet* — a program reading those must see the scalar
        # interleaving, so they stay unstable and force the safe lane.
        def bind(name: str, fn: Callable[[ExecutionContext], int],
                 batch_stable: bool = True) -> None:
            self.mmu.bind_reader(name, fn, batch_stable=batch_stable)

        # Switch: global registers.
        bind("Switch:SwitchID", lambda ctx: self.switch_id)
        bind("Switch:NumPorts", lambda ctx: len(self.ports))
        bind("Switch:ClockLo", lambda ctx: ctx.time_ns & 0xFFFF_FFFF)
        bind("Switch:ClockHi", lambda ctx: ctx.time_ns >> 32)
        bind("Switch:L2TableVersion", lambda ctx: self.l2.table_version)
        bind("Switch:L2TableEntries", lambda ctx: len(self.l2))
        bind("Switch:L3TableEntries", lambda ctx: len(self.l3))
        bind("Switch:TCAMEntries", lambda ctx: len(self.tcam))
        bind("Switch:TPPsExecuted", lambda ctx: self.tcpu.tpps_executed,
             batch_stable=False)
        bind("Switch:PacketsSwitched", lambda ctx: self.packets_switched,
             batch_stable=False)

        # PacketMetadata: the packet in the pipeline.
        meta = lambda attr: (lambda ctx: getattr(ctx.metadata, attr))
        bind("PacketMetadata:InputPort", meta("input_port"))
        bind("PacketMetadata:OutputPort", meta("output_port"))
        bind("PacketMetadata:MatchedEntryID", meta("matched_entry_id"))
        bind("PacketMetadata:MatchedEntryVersion",
             meta("matched_entry_version"))
        bind("PacketMetadata:QueueID", meta("queue_id"))
        bind("PacketMetadata:PacketLength", meta("packet_length"))
        bind("PacketMetadata:ArrivalTimeLo",
             lambda ctx: ctx.metadata.arrival_time_ns & 0xFFFF_FFFF)
        bind("PacketMetadata:ArrivalTimeHi",
             lambda ctx: ctx.metadata.arrival_time_ns >> 32)
        bind("PacketMetadata:AlternateRoutes", meta("alternate_routes"))
        bind("PacketMetadata:MatchedEntryHits", meta("matched_entry_hits"))

        # Queue: the packet's egress queue.  QueueSize is the backlog
        # awaiting transmission (the packet currently on the wire has left
        # the buffer from the memory manager's point of view).
        bind("Queue:QueueSize", lambda ctx: ctx.queue.backlog_bytes)
        bind("Queue:QueueSizePackets", lambda ctx: len(ctx.queue))
        bind("Queue:BytesEnqueued",
             lambda ctx: ctx.queue.stats.bytes_enqueued)
        bind("Queue:BytesDropped", lambda ctx: ctx.queue.stats.bytes_dropped)
        bind("Queue:PacketsEnqueued",
             lambda ctx: ctx.queue.stats.packets_enqueued)
        bind("Queue:PacketsDropped",
             lambda ctx: ctx.queue.stats.packets_dropped)
        bind("Queue:AvgQueueSize", self._avg_queue_size)

        # Link: the packet's egress port.
        bind("Link:RX-Utilization",
             self._port_stat(lambda s: s.rx_utilization.utilization_milli))
        bind("Link:TX-Utilization",
             self._port_stat(lambda s: s.tx_utilization.utilization_milli))
        bind("Link:BytesReceived", lambda ctx: ctx.egress_port.rx_bytes)
        bind("Link:BytesTransmitted", lambda ctx: ctx.egress_port.tx_bytes)
        bind("Link:FramesReceived", lambda ctx: ctx.egress_port.rx_frames)
        bind("Link:FramesTransmitted", lambda ctx: ctx.egress_port.tx_frames)
        bind("Link:CapacityMbps",
             lambda ctx: ctx.egress_port.rate_bps // 1_000_000)
        bind("Link:SNR-MilliDb", self._snr_milli_db)

    def _avg_queue_size(self, ctx: ExecutionContext) -> int:
        if self.stats is None:
            return ctx.queue.occupancy_bytes
        port_stats = self.stats.port(ctx.egress_port_index)
        return port_stats.avg_queue_for(
            ctx.metadata.queue_id).average_bytes

    def _port_stat(self, extract: Callable[[PortStats], int]
                   ) -> Callable[[ExecutionContext], int]:
        def reader(ctx: ExecutionContext) -> int:
            if self.stats is None:
                return 0
            return extract(self.stats.port(ctx.egress_port_index))
        return reader

    @staticmethod
    def _snr_milli_db(ctx: ExecutionContext) -> int:
        channel = getattr(ctx.egress_port, "wireless_channel", None)
        if channel is None:
            return 0
        return int(channel.current_snr_milli_db)
