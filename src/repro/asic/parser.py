"""The header parser stage.

Extracts the fields later pipeline stages match on, looking *through* a TPP
section to the encapsulated headers — a TPP-carrying packet must be
forwarded exactly like the packet it encapsulates ("TPPs ... are forwarded
just like other packets", §2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.tpp import TPPSection
from repro.net.packet import ETHERTYPE_TPP, Datagram, EthernetFrame


@dataclass
class ParsedHeaders:
    """Fields extracted by the parser for the match stages."""

    src_mac: int
    dst_mac: int
    ethertype: int
    tpp: Optional[TPPSection] = None
    src_ip: Optional[int] = None
    dst_ip: Optional[int] = None
    ip_protocol: Optional[int] = None
    src_port: Optional[int] = None
    dst_port: Optional[int] = None
    tos: int = 0


def parse_frame(frame: EthernetFrame) -> ParsedHeaders:
    """Parse a frame's header stack.

    The parsed view is cached on the frame and travels with it across
    hops, so a multi-hop journey parses the header stack once instead of
    once per switch.  Any mutation that reshapes the payload chain
    (switch strip action, link truncation) must call
    :meth:`~repro.net.packet.EthernetFrame.invalidate_size_cache`, which
    drops this cache too; per-hop writes into TPP packet memory mutate
    the same :class:`TPPSection` object the cached view points at, so
    they need no invalidation.
    """
    cached = frame._parsed_cache
    if cached is not None:
        return cached
    headers = ParsedHeaders(src_mac=frame.src, dst_mac=frame.dst,
                            ethertype=frame.ethertype)
    payload = frame.payload
    if frame.ethertype == ETHERTYPE_TPP and isinstance(payload, TPPSection):
        headers.tpp = payload
        payload = payload.payload
    if isinstance(payload, Datagram):
        headers.src_ip = payload.src_ip
        headers.dst_ip = payload.dst_ip
        headers.ip_protocol = payload.protocol
        headers.src_port = payload.src_port
        headers.dst_port = payload.dst_port
        headers.tos = payload.tos
    frame._parsed_cache = headers
    return headers
