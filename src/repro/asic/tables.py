"""Forwarding tables: L2 exact match, L3 longest-prefix match, and TCAM.

The pipeline consults them in the priority order of Figure 3 — TCAM first
(it holds operator overrides and is what the ndb experiment uses to inject
a misbehaving rule), then the L2 hash table, then the L3 LPM table.

Every installed entry carries a switch-unique ``entry_id`` and a
monotonically increasing ``version`` stamp.  This is precisely the hook the
ndb debugger of §2.3 relies on ("stamping each flow entry with a unique
version number"): re-installing a route creates a new version, and packets
record the version of the entry that actually forwarded them, so end-hosts
can detect packets forwarded by stale rules.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.asic.parser import ParsedHeaders
from repro.errors import ConfigurationError

#: Sentinel out_port meaning "drop the packet" in a TCAM action.
DROP = -1


class EntryAllocator:
    """Per-switch source of unique entry ids and version stamps."""

    def __init__(self) -> None:
        self._entry_ids = itertools.count(1)
        self._versions = itertools.count(1)
        self.last_version = 0

    def next_entry_id(self) -> int:
        return next(self._entry_ids)

    def next_version(self) -> int:
        self.last_version = next(self._versions)
        return self.last_version


@dataclass(frozen=True)
class LookupResult:
    """Outcome of a forwarding lookup."""

    out_port: int
    entry_id: int
    version: int
    table: str
    alternate_routes: int = 0
    queue_id: Optional[int] = None  # TCAM set-queue action, if any

    @property
    def is_drop(self) -> bool:
        return self.out_port == DROP


@dataclass
class L2Entry:
    """One unicast MAC entry, possibly with ECMP alternates."""

    dst_mac: int
    out_ports: List[int]
    entry_id: int
    version: int


class L2Table:
    """Exact-match table on destination MAC."""

    def __init__(self, allocator: EntryAllocator) -> None:
        self._allocator = allocator
        self._entries: Dict[int, L2Entry] = {}
        self.table_version = 0
        #: Per-entry match counters (Table 2: "counters associated with
        #: the global L2 or L3 flow tables").
        self.hit_counts: Dict[int, int] = {}

    def __len__(self) -> int:
        return len(self._entries)

    def install(self, dst_mac: int, out_port: int) -> L2Entry:
        """Install (or replace) the route for a MAC.

        Replacement allocates a fresh entry id and version — the ndb
        experiments distinguish pre- and post-update packets by it.
        """
        entry = L2Entry(dst_mac=dst_mac, out_ports=[out_port],
                        entry_id=self._allocator.next_entry_id(),
                        version=self._allocator.next_version())
        self._entries[dst_mac] = entry
        self.table_version = entry.version
        return entry

    def add_alternate(self, dst_mac: int, out_port: int) -> L2Entry:
        """Add an ECMP alternate next-hop for an already-routed MAC."""
        entry = self._entries.get(dst_mac)
        if entry is None:
            raise ConfigurationError(
                f"no route for MAC {dst_mac:#x} to add an alternate to")
        if out_port not in entry.out_ports:
            entry.out_ports.append(out_port)
        return entry

    def remove(self, dst_mac: int) -> None:
        """Delete a MAC route (no-op if absent)."""
        if self._entries.pop(dst_mac, None) is not None:
            self.table_version = self._allocator.next_version()

    def lookup(self, dst_mac: int,
               flow_hash: Optional[int] = None) -> Optional[LookupResult]:
        """Forwarding decision for a MAC.

        When the entry has ECMP alternates and a ``flow_hash`` is given,
        the next hop is picked by hash — packets of one flow stay on one
        path (no reordering) while flows spread across the candidates.
        """
        entry = self._entries.get(dst_mac)
        if entry is None:
            return None
        self.hit_counts[entry.entry_id] = self.hit_counts.get(
            entry.entry_id, 0) + 1
        if flow_hash is None or len(entry.out_ports) == 1:
            out_port = entry.out_ports[0]
        else:
            out_port = entry.out_ports[flow_hash % len(entry.out_ports)]
        return LookupResult(out_port=out_port,
                            entry_id=entry.entry_id,
                            version=entry.version, table="l2",
                            alternate_routes=len(entry.out_ports) - 1)

    def entry_for(self, dst_mac: int) -> Optional[L2Entry]:
        """The live entry for a MAC (controller-side inspection)."""
        return self._entries.get(dst_mac)


@dataclass
class L3Entry:
    """One IPv4 prefix route."""

    prefix: int
    prefix_len: int
    out_port: int
    entry_id: int
    version: int

    def matches(self, address: int) -> bool:
        if self.prefix_len == 0:
            return True
        shift = 32 - self.prefix_len
        return (address >> shift) == (self.prefix >> shift)


class L3Table:
    """Longest-prefix-match table on destination IPv4 address."""

    def __init__(self, allocator: EntryAllocator) -> None:
        self._allocator = allocator
        self._entries: List[L3Entry] = []
        self.hit_counts: Dict[int, int] = {}

    def __len__(self) -> int:
        return len(self._entries)

    def install(self, prefix: int, prefix_len: int, out_port: int) -> L3Entry:
        """Install a prefix route (replaces an identical prefix)."""
        if not 0 <= prefix_len <= 32:
            raise ConfigurationError(f"bad prefix length {prefix_len}")
        self._entries = [e for e in self._entries
                         if (e.prefix, e.prefix_len) != (prefix, prefix_len)]
        entry = L3Entry(prefix=prefix, prefix_len=prefix_len,
                        out_port=out_port,
                        entry_id=self._allocator.next_entry_id(),
                        version=self._allocator.next_version())
        self._entries.append(entry)
        # Longest prefixes first so lookup can return the first match.
        self._entries.sort(key=lambda e: -e.prefix_len)
        return entry

    def lookup(self, dst_ip: Optional[int]) -> Optional[LookupResult]:
        if dst_ip is None:
            return None
        for entry in self._entries:
            if entry.matches(dst_ip):
                self.hit_counts[entry.entry_id] = self.hit_counts.get(
                    entry.entry_id, 0) + 1
                return LookupResult(out_port=entry.out_port,
                                    entry_id=entry.entry_id,
                                    version=entry.version, table="l3")
        return None


@dataclass
class TcamRule:
    """A ternary rule: any field left ``None`` is a wildcard.

    ``queue_id`` is an optional set-queue action: matching packets are
    placed in that egress queue (traffic classing for the priority/DRR
    schedulers).
    """

    priority: int
    out_port: int
    queue_id: Optional[int] = None
    in_port: Optional[int] = None
    ethertype: Optional[int] = None
    src_mac: Optional[int] = None
    dst_mac: Optional[int] = None
    src_ip: Optional[int] = None
    dst_ip: Optional[int] = None
    ip_protocol: Optional[int] = None
    src_port: Optional[int] = None
    dst_port: Optional[int] = None
    entry_id: int = 0
    version: int = 0

    def matches(self, headers: ParsedHeaders, in_port: int) -> bool:
        checks = (
            (self.in_port, in_port),
            (self.ethertype, headers.ethertype),
            (self.src_mac, headers.src_mac),
            (self.dst_mac, headers.dst_mac),
            (self.src_ip, headers.src_ip),
            (self.dst_ip, headers.dst_ip),
            (self.ip_protocol, headers.ip_protocol),
            (self.src_port, headers.src_port),
            (self.dst_port, headers.dst_port),
        )
        return all(want is None or want == got for want, got in checks)


class Tcam:
    """Priority-ordered ternary matching (highest priority wins)."""

    def __init__(self, allocator: EntryAllocator,
                 capacity: int = 1024) -> None:
        self._allocator = allocator
        self.capacity = capacity
        self._rules: List[TcamRule] = []
        self.hit_counts: Dict[int, int] = {}

    def __len__(self) -> int:
        return len(self._rules)

    def install(self, rule: TcamRule) -> TcamRule:
        """Install a rule; stable order among equal priorities."""
        if len(self._rules) >= self.capacity:
            raise ConfigurationError(
                f"TCAM full ({self.capacity} rules)")
        rule.entry_id = self._allocator.next_entry_id()
        rule.version = self._allocator.next_version()
        self._rules.append(rule)
        self._rules.sort(key=lambda r: -r.priority)
        return rule

    def remove(self, entry_id: int) -> bool:
        """Remove a rule by entry id; returns whether it existed."""
        before = len(self._rules)
        self._rules = [r for r in self._rules if r.entry_id != entry_id]
        return len(self._rules) != before

    def lookup(self, headers: ParsedHeaders,
               in_port: int) -> Optional[LookupResult]:
        for rule in self._rules:
            if rule.matches(headers, in_port):
                self.hit_counts[rule.entry_id] = self.hit_counts.get(
                    rule.entry_id, 0) + 1
                return LookupResult(out_port=rule.out_port,
                                    entry_id=rule.entry_id,
                                    version=rule.version, table="tcam",
                                    queue_id=rule.queue_id)
        return None
