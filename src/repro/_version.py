"""Version of the TPP reproduction package."""

__version__ = "1.0.0"
