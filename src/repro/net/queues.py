"""Drop-tail queues with byte-accurate occupancy tracking.

Queue occupancy is the statistic at the heart of the paper's first example
(micro-burst detection reads ``[Queue:QueueSize]``), so queues track bytes
exactly: a packet contributes its full wire size from the moment it is
admitted until the moment its last bit has been serialized onto the link.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Optional

from repro.net.packet import EthernetFrame


@dataclass
class QueueStats:
    """Running counters exported into the ``Queue:`` namespace (Table 2)."""

    bytes_enqueued: int = 0
    bytes_dropped: int = 0
    packets_enqueued: int = 0
    packets_dropped: int = 0
    peak_occupancy_bytes: int = 0


class DropTailQueue:
    """A FIFO byte-bounded queue.

    ``capacity_bytes`` bounds the sum of wire sizes of queued packets;
    arrivals that would exceed it are dropped (tail drop).  Occupancy
    includes the packet currently being transmitted — its bytes are released
    by :meth:`transmit_complete` — matching how an egress buffer behaves in
    the ASIC of Figure 3, where the memory manager tracks per-queue
    occupancy until the scheduler has drained the packet.
    """

    def __init__(self, capacity_bytes: int = 512 * 1024) -> None:
        if capacity_bytes <= 0:
            raise ValueError(f"capacity must be positive: {capacity_bytes}")
        self.capacity_bytes = capacity_bytes
        self.stats = QueueStats()
        self._packets: Deque[EthernetFrame] = deque()
        self._occupancy_bytes = 0
        self._in_flight_bytes = 0

    def __len__(self) -> int:
        return len(self._packets)

    @property
    def occupancy_bytes(self) -> int:
        """Bytes buffered, including the packet on the wire right now."""
        return self._occupancy_bytes + self._in_flight_bytes

    @property
    def backlog_bytes(self) -> int:
        """Bytes waiting behind the packet currently being transmitted."""
        return self._occupancy_bytes

    def offer(self, frame: EthernetFrame) -> bool:
        """Try to enqueue; returns ``False`` (and counts a drop) if full."""
        size = frame.size_bytes
        stats = self.stats
        # Compute the would-be occupancy once instead of going through the
        # occupancy_bytes property three times — this runs per admitted
        # frame on every hop.
        occupancy = self._occupancy_bytes + self._in_flight_bytes + size
        if occupancy > self.capacity_bytes:
            stats.bytes_dropped += size
            stats.packets_dropped += 1
            return False
        self._packets.append(frame)
        self._occupancy_bytes += size
        stats.bytes_enqueued += size
        stats.packets_enqueued += 1
        if occupancy > stats.peak_occupancy_bytes:
            stats.peak_occupancy_bytes = occupancy
        return True

    def head_size_bytes(self) -> int:
        """Wire size of the packet at the head (0 when empty).

        Used by byte-accurate schedulers (DRR) to decide whether the
        queue's deficit covers its next packet.
        """
        if not self._packets:
            return 0
        return self._packets[0].size_bytes

    def begin_transmit(self) -> Optional[EthernetFrame]:
        """Dequeue the head packet for transmission.

        The packet's bytes stay in :attr:`occupancy_bytes` until
        :meth:`transmit_complete` is called with it.
        """
        if not self._packets:
            return None
        frame = self._packets.popleft()
        self._occupancy_bytes -= frame.size_bytes
        self._in_flight_bytes += frame.size_bytes
        return frame

    def transmit_complete(self, frame: EthernetFrame) -> None:
        """Release the bytes of a packet whose serialization finished."""
        self._in_flight_bytes -= frame.size_bytes
        if self._in_flight_bytes < 0:
            raise RuntimeError("transmit_complete without begin_transmit")

    def clear(self) -> None:
        """Drop all queued packets without counting them as tail drops."""
        self._packets.clear()
        self._occupancy_bytes = 0
