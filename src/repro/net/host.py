"""End-host device.

A host has a single port, a MAC and an IPv4 address, and a registry of
protocol handlers:

- frames whose ethertype has a registered handler are dispatched to it
  (the TPP client in :mod:`repro.endhost` registers for
  :data:`~repro.net.packet.ETHERTYPE_TPP`);
- IPv4/UDP datagrams are dispatched to the handler bound to their
  destination UDP port (flows, RCP receivers, ndb collectors).

Hosts are "fully programmable" in the paper's architecture — all the
expressive task logic lives in handlers attached here.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from repro.errors import ConfigurationError
from repro.net.device import Device
from repro.net.packet import (
    ETHERTYPE_IPV4,
    Datagram,
    EthernetFrame,
)
from repro.sim.simulator import Simulator
from repro.sim.trace import TraceRecorder

FrameHandler = Callable[[EthernetFrame], None]
DatagramHandler = Callable[[Datagram, EthernetFrame], None]


class Host(Device):
    """A single-homed end-host."""

    def __init__(self, sim: Simulator, name: str, mac: int, ip: int,
                 trace: Optional[TraceRecorder] = None) -> None:
        super().__init__(sim, name, trace)
        self.mac = mac
        self.ip = ip
        self._ethertype_handlers: Dict[int, FrameHandler] = {}
        self._udp_handlers: Dict[int, DatagramHandler] = {}
        self.frames_received = 0
        self.frames_sent = 0
        self.undelivered_frames = 0

    # ------------------------------------------------------------------ #
    # Sending
    # ------------------------------------------------------------------ #

    def send_frame(self, frame: EthernetFrame) -> bool:
        """Transmit a pre-built frame out of the host's port."""
        if not self.ports:
            raise ConfigurationError(f"host {self.name} has no port")
        self.frames_sent += 1
        return self.ports[0].enqueue(frame)

    def send_datagram(self, dst_mac: int, datagram: Datagram) -> bool:
        """Wrap a datagram in an Ethernet frame and transmit it."""
        frame = EthernetFrame(dst=dst_mac, src=self.mac,
                              ethertype=ETHERTYPE_IPV4, payload=datagram)
        return self.send_frame(frame)

    # ------------------------------------------------------------------ #
    # Receiving
    # ------------------------------------------------------------------ #

    def on_ethertype(self, ethertype: int, handler: FrameHandler) -> None:
        """Register a handler for a whole ethertype (e.g. TPP)."""
        self._ethertype_handlers[ethertype] = handler

    def on_udp_port(self, port: int, handler: DatagramHandler) -> None:
        """Register a handler for datagrams addressed to a UDP port."""
        self._udp_handlers[port] = handler

    def deliver_datagram(self, datagram: Datagram,
                         frame: EthernetFrame) -> bool:
        """Dispatch a datagram to its UDP-port handler.

        Returns ``False`` (and counts the frame undelivered) when no
        handler is bound.  Used both by normal receive and by the TPP
        endpoint when unwrapping encapsulated payloads.
        """
        handler = self._udp_handlers.get(datagram.dst_port)
        if handler is None:
            self.undelivered_frames += 1
            return False
        handler(datagram, frame)
        return True

    def receive(self, frame: EthernetFrame, in_port: int) -> None:
        self.ports[in_port].note_rx(frame)
        self.frames_received += 1
        handler = self._ethertype_handlers.get(frame.ethertype)
        if handler is not None:
            handler(frame)
            return
        if frame.ethertype == ETHERTYPE_IPV4 and isinstance(frame.payload,
                                                            Datagram):
            if self.deliver_datagram(frame.payload, frame):
                return
        else:
            self.undelivered_frames += 1
        if self.trace.wants("host.undelivered"):
            self.trace.emit(self.sim.now_ns, self.name, "host.undelivered",
                            frame_uid=frame.uid, ethertype=frame.ethertype)
