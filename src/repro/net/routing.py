"""Shortest-path route computation and forwarding-table installation.

This plays the role of the SDN controller's path computation: BFS over the
adjacency graph from every host, then one L2 exact-match entry per
(switch, destination host) installed into the switch's forwarding tables.
Installed entries carry a version number, which is what the ndb debugger
(§2.3) keys its forwarding-state checks on.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Optional, Tuple

from repro.errors import ConfigurationError
from repro.net.topology import Network


def shortest_paths_from(net: Network, origin: str) -> Dict[str, List[str]]:
    """BFS tree: device name -> path (list of device names) from ``origin``.

    Ties are broken by port order, which is creation order — deterministic
    across runs.
    """
    adjacency = net.adjacency()
    if origin not in adjacency:
        raise ConfigurationError(f"unknown device {origin!r}")
    paths: Dict[str, List[str]] = {origin: [origin]}
    frontier = deque([origin])
    while frontier:
        current = frontier.popleft()
        for _, peer, _ in sorted(adjacency[current]):
            if peer not in paths:
                paths[peer] = paths[current] + [peer]
                frontier.append(peer)
    return paths


def next_hop_port(net: Network, device: str, toward: str) -> Optional[int]:
    """The local port on ``device`` whose link leads to ``toward``."""
    for local_port, peer, _ in net.adjacency()[device]:
        if peer == toward:
            return local_port
    return None


def host_path(net: Network, src_host: str, dst_host: str) -> List[str]:
    """Device names along the route from one host to another (inclusive)."""
    paths = shortest_paths_from(net, src_host)
    if dst_host not in paths:
        raise ConfigurationError(
            f"no path from {src_host!r} to {dst_host!r}")
    return paths[dst_host]


def install_shortest_path_routes(net: Network) -> Dict[Tuple[str, int], int]:
    """Install L2 unicast entries for every host on every switch.

    Returns ``{(switch_name, dst_mac): out_port}`` — the controller's
    *intended* forwarding state, which the ndb experiments verify the
    dataplane against.
    """
    intended: Dict[Tuple[str, int], int] = {}
    adjacency = net.adjacency()
    for host_name, host in net.hosts.items():
        paths = shortest_paths_from(net, host_name)
        for switch_name, switch in net.switches.items():
            if switch_name not in paths:
                continue
            path = paths[switch_name]
            if len(path) < 2:
                continue
            # path is host -> ... -> switch; the switch's next hop back
            # toward the host is the previous element.
            toward = path[-2]
            out_port = None
            for local_port, peer, _ in adjacency[switch_name]:
                if peer == toward:
                    out_port = local_port
                    break
            if out_port is None:
                raise ConfigurationError(
                    f"adjacency inconsistent at {switch_name!r}")
            switch.install_l2_route(host.mac, out_port)
            intended[(switch_name, host.mac)] = out_port
    return intended
