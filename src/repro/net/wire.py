"""Full wire-format serialization of simulated frames.

The TPP section always had a real byte encoding (the §3 overhead numbers
are measured on it); this module extends that fidelity to the whole
frame: Ethernet II framing with a real CRC-32 FCS, IPv4 headers with a
correct internet checksum, ECN bits, the RFC 791 record-route option, the
RCP shim header, and UDP.  ``decode_frame(encode_frame(f))`` reconstructs
the frame, which the property tests exercise, and the byte lengths agree
with the object model's ``size_bytes`` — so every queueing/transmission
time in the simulator corresponds to real bytes that could go on a wire.

Layout summary::

    Ethernet  dst(6) src(6) ethertype(2) ... payload ... pad-to-60 FCS(4)
    IPv4      standard 20 B header [+ record-route option] ; ECN in TOS
    RCP shim  protocol 253: rate(8) rtt(4) real_proto(1) pad(3)
    UDP       sport(2) dport(2) length(2) checksum=0(2)
    TPP       see repro.core.tpp (header, instructions, packet memory)
"""

from __future__ import annotations

import struct
import zlib
from typing import Optional, Tuple, Union

from repro.core.tpp import TPPSection
from repro.errors import WireFormatError
from repro.net.packet import (
    ETHERNET_FCS_BYTES,
    ETHERNET_HEADER_BYTES,
    ETHERNET_MIN_FRAME_BYTES,
    ETHERTYPE_IPV4,
    ETHERTYPE_TPP,
    Datagram,
    EthernetFrame,
    RawPayload,
)

_ETH = struct.Struct("!6s6sH")
_IPV4 = struct.Struct("!BBHHHBBH4s4s")
_UDP = struct.Struct("!HHHH")
_RCP_SHIM = struct.Struct("!QIB3s")

IP_PROTO_UDP = 17
#: Experimental protocol number used to carry the RCP shim (the original
#: RCP proposal inserts its header between IP and transport).
IP_PROTO_RCP_SHIM = 253
IP_OPTION_RECORD_ROUTE = 7


def internet_checksum(data: bytes) -> int:
    """RFC 1071 ones-complement checksum over 16-bit words."""
    if len(data) % 2:
        data += b"\x00"
    total = sum(struct.unpack(f"!{len(data) // 2}H", data))
    while total >> 16:
        total = (total & 0xFFFF) + (total >> 16)
    return ~total & 0xFFFF


# --------------------------------------------------------------------- #
# Encoding
# --------------------------------------------------------------------- #

def encode_frame(frame: EthernetFrame) -> bytes:
    """Serialize a frame to real wire bytes (FCS included)."""
    payload = _encode_payload(frame.payload)
    body = _ETH.pack(frame.dst.to_bytes(6, "big"),
                     frame.src.to_bytes(6, "big"),
                     frame.ethertype) + payload
    pad = max(0, ETHERNET_MIN_FRAME_BYTES - ETHERNET_FCS_BYTES - len(body))
    body += b"\x00" * pad
    fcs = zlib.crc32(body) & 0xFFFF_FFFF
    return body + fcs.to_bytes(4, "big")


Payload = Union[RawPayload, Datagram, TPPSection]


def _encode_payload(payload: Optional[Payload]) -> bytes:
    if payload is None:
        return b""
    if isinstance(payload, RawPayload):
        data = payload.data or b""
        return data + b"\x00" * (payload.size_bytes - len(data))
    if isinstance(payload, Datagram):
        return encode_datagram(payload)
    if isinstance(payload, TPPSection):
        return payload.encode() + _encode_payload(payload.payload)
    raise WireFormatError(f"cannot encode payload {type(payload).__name__}")


def encode_datagram(datagram: Datagram) -> bytes:
    """IPv4 (+options, +RCP shim) + UDP + inner payload."""
    options = b""
    if datagram.route_record_slots:
        filled = datagram.route_record or []
        entries = b"".join(value.to_bytes(4, "big") for value in filled)
        entries += b"\x00" * (4 * (datagram.route_record_slots
                                   - len(filled)))
        length = 3 + 4 * datagram.route_record_slots
        pointer = 4 + 4 * len(filled)
        options = bytes([IP_OPTION_RECORD_ROUTE, length, pointer]) + entries
        # IHL counts 32-bit words; pad options to a multiple of 4.
        if len(options) % 4:
            options += b"\x00" * (4 - len(options) % 4)

    shim = b""
    protocol = datagram.protocol
    if datagram.congestion_header is not None:
        header = datagram.congestion_header
        shim = _RCP_SHIM.pack(int(header.rate_bps), int(header.rtt_ns),
                              datagram.protocol, b"\x00" * 3)
        protocol = IP_PROTO_RCP_SHIM

    inner = _encode_payload(datagram.payload)
    udp = _UDP.pack(datagram.src_port, datagram.dst_port,
                    8 + len(inner), 0)
    ihl_words = (20 + len(options)) // 4
    total_length = ihl_words * 4 + len(shim) + len(udp) + len(inner)
    tos_byte = ((datagram.tos & 0x3F) << 2) | (datagram.ecn & 0x3)
    header_wo_checksum = _IPV4.pack(
        (4 << 4) | ihl_words, tos_byte, total_length,
        0, 0,  # identification, flags/fragment
        64, protocol, 0,
        datagram.src_ip.to_bytes(4, "big"),
        datagram.dst_ip.to_bytes(4, "big"))
    checksum = internet_checksum(header_wo_checksum + options)
    header = bytearray(header_wo_checksum)
    header[10:12] = checksum.to_bytes(2, "big")
    return bytes(header) + options + shim + udp + inner


# --------------------------------------------------------------------- #
# Decoding
# --------------------------------------------------------------------- #

def decode_frame(raw: bytes) -> EthernetFrame:
    """Parse wire bytes back into a frame (verifies FCS and checksum)."""
    if len(raw) < ETHERNET_MIN_FRAME_BYTES:
        raise WireFormatError(f"frame too short: {len(raw)} bytes")
    body, fcs_bytes = raw[:-4], raw[-4:]
    if zlib.crc32(body) & 0xFFFF_FFFF != int.from_bytes(fcs_bytes, "big"):
        raise WireFormatError("bad Ethernet FCS")
    dst, src, ethertype = _ETH.unpack(body[:ETHERNET_HEADER_BYTES])
    rest = body[ETHERNET_HEADER_BYTES:]
    payload = _decode_payload(ethertype, rest)
    return EthernetFrame(dst=int.from_bytes(dst, "big"),
                         src=int.from_bytes(src, "big"),
                         ethertype=ethertype, payload=payload)


def _decode_payload(ethertype: int, raw: bytes) -> Optional[Payload]:
    if ethertype == ETHERTYPE_IPV4:
        datagram, _ = decode_datagram(raw)
        return datagram
    if ethertype == ETHERTYPE_TPP:
        return _decode_tpp(raw)
    if not raw.strip(b"\x00"):
        return None
    return RawPayload(len(raw), data=raw)


def _decode_tpp(raw: bytes) -> TPPSection:
    if len(raw) < 2:
        raise WireFormatError("truncated TPP section")
    tpp_length = int.from_bytes(raw[:2], "big")
    if tpp_length > len(raw):
        raise WireFormatError(
            f"TPP claims {tpp_length} bytes, only {len(raw)} present")
    tpp = TPPSection.decode(raw[:tpp_length])
    remainder = raw[tpp_length:]
    if remainder.strip(b"\x00"):
        # Inner payload is always IPv4 in this model.
        datagram, _ = decode_datagram(remainder)
        tpp.payload = datagram
    return tpp


def decode_datagram(raw: bytes) -> Tuple[Datagram, int]:
    """Parse an IPv4+UDP datagram; returns (datagram, bytes consumed)."""
    if len(raw) < 20:
        raise WireFormatError(f"IPv4 header truncated: {len(raw)} bytes")
    (version_ihl, tos_byte, total_length, _ident, _frag, _ttl, protocol,
     _checksum, src_raw, dst_raw) = _IPV4.unpack(raw[:20])
    if version_ihl >> 4 != 4:
        raise WireFormatError(f"not IPv4: version {version_ihl >> 4}")
    ihl_bytes = (version_ihl & 0xF) * 4
    if internet_checksum(raw[:ihl_bytes]) != 0:
        raise WireFormatError("bad IPv4 header checksum")

    route_record = None
    route_slots = 0
    options = raw[20:ihl_bytes]
    if options and options[0] == IP_OPTION_RECORD_ROUTE:
        length = options[1]
        pointer = options[2]
        route_slots = (length - 3) // 4
        filled = (pointer - 4) // 4
        entries = options[3:3 + 4 * route_slots]
        route_record = [int.from_bytes(entries[i * 4:(i + 1) * 4], "big")
                        for i in range(filled)]

    offset = ihl_bytes
    congestion_header = None
    if protocol == IP_PROTO_RCP_SHIM:
        from repro.apps.rcp_common import RCPHeader
        rate, rtt, real_protocol, _pad = _RCP_SHIM.unpack(
            raw[offset:offset + _RCP_SHIM.size])
        congestion_header = RCPHeader(rate_bps=rate, rtt_ns=rtt)
        protocol = real_protocol
        offset += _RCP_SHIM.size

    src_port, dst_port, udp_length, _ = _UDP.unpack(
        raw[offset:offset + 8])
    inner_raw = raw[offset + 8:offset + udp_length]
    inner = RawPayload(len(inner_raw), data=inner_raw) if (
        inner_raw.strip(b"\x00")) else (
        RawPayload(len(inner_raw)) if inner_raw else None)

    datagram = Datagram(
        src_ip=int.from_bytes(src_raw, "big"),
        dst_ip=int.from_bytes(dst_raw, "big"),
        src_port=src_port, dst_port=dst_port, payload=inner,
        protocol=protocol, tos=tos_byte >> 2, ecn=tos_byte & 0x3,
        congestion_header=congestion_header,
        route_record=route_record, route_record_slots=route_slots)
    return datagram, total_length
