"""Active queue management: RED with ECN support.

The §4 ECN discussion assumes "a router stamps a bit ... whenever the
egress queue occupancy exceeds a configurable threshold".  The simple
threshold marker lives in :mod:`repro.apps.inband_baselines`; this module
provides the classic full discipline — Random Early Detection (Floyd &
Jacobson) — as a policy that can be attached to any drop-tail queue:

- the *average* queue length is tracked with an EWMA updated on arrivals;
- below ``min_threshold`` packets are admitted untouched;
- between the thresholds packets are marked (ECN-capable traffic) or
  dropped with probability rising linearly to ``max_probability``;
- above ``max_threshold`` every packet is marked/dropped.

Attach with :func:`install_red`; the queue consults the policy on every
arrival before normal tail-drop admission.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, List, Optional

from repro.errors import ConfigurationError
from repro.net.packet import Datagram, EthernetFrame
from repro.net.queues import DropTailQueue

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.net.port import Port

ECN_ECT = 1
ECN_CE = 3


@dataclass
class REDStats:
    """Counters for one RED-managed queue."""

    packets_marked: int = 0
    packets_dropped_early: int = 0
    packets_admitted: int = 0


class REDPolicy:
    """Random Early Detection over queue *bytes*."""

    def __init__(self, min_threshold_bytes: int, max_threshold_bytes: int,
                 max_probability: float = 0.1, weight: float = 0.2,
                 rng: Optional[random.Random] = None) -> None:
        if not 0 < min_threshold_bytes < max_threshold_bytes:
            raise ConfigurationError(
                f"need 0 < min < max, got {min_threshold_bytes} / "
                f"{max_threshold_bytes}")
        if not 0.0 < max_probability <= 1.0:
            raise ConfigurationError(
                f"max_probability must be in (0, 1]: {max_probability}")
        if not 0.0 < weight <= 1.0:
            raise ConfigurationError(f"weight must be in (0, 1]: {weight}")
        self.min_threshold_bytes = min_threshold_bytes
        self.max_threshold_bytes = max_threshold_bytes
        self.max_probability = max_probability
        self.weight = weight
        self._rng = rng if rng is not None else random.Random(0)
        self.average_bytes = 0.0
        self.stats = REDStats()

    def on_arrival(self, queue: DropTailQueue,
                   frame: EthernetFrame) -> str:
        """Policy decision for one arriving frame:
        ``"admit"`` / ``"mark"`` / ``"drop"``."""
        self.average_bytes += self.weight * (queue.backlog_bytes
                                             - self.average_bytes)
        probability = self._probability()
        if probability == 0.0:
            self.stats.packets_admitted += 1
            return "admit"
        if probability >= 1.0 or self._rng.random() < probability:
            if _is_ect(frame):
                self.stats.packets_marked += 1
                return "mark"
            self.stats.packets_dropped_early += 1
            return "drop"
        self.stats.packets_admitted += 1
        return "admit"

    def _probability(self) -> float:
        if self.average_bytes < self.min_threshold_bytes:
            return 0.0
        if self.average_bytes >= self.max_threshold_bytes:
            return 1.0
        span = self.max_threshold_bytes - self.min_threshold_bytes
        return (self.max_probability
                * (self.average_bytes - self.min_threshold_bytes) / span)


def _find_datagram(frame: EthernetFrame) -> Optional[Datagram]:
    payload = frame.payload
    inner = getattr(payload, "payload", None)
    if isinstance(payload, Datagram):
        return payload
    if isinstance(inner, Datagram):
        return inner
    return None


def _is_ect(frame: EthernetFrame) -> bool:
    datagram = _find_datagram(frame)
    return datagram is not None and datagram.ecn in (ECN_ECT, ECN_CE)


def mark_ce(frame: EthernetFrame) -> None:
    """Stamp congestion-experienced on the frame's datagram."""
    datagram = _find_datagram(frame)
    if datagram is not None:
        datagram.ecn = ECN_CE


def red_offer(queue: DropTailQueue, policy: REDPolicy,
              frame: EthernetFrame) -> bool:
    """Admission with RED in front of tail-drop; returns acceptance."""
    action = policy.on_arrival(queue, frame)
    if action == "drop":
        queue.stats.bytes_dropped += frame.size_bytes
        queue.stats.packets_dropped += 1
        return False
    if action == "mark":
        mark_ce(frame)
    return queue.offer(frame)


class REDQueueAdapter:
    """Wraps a port so its default queue applies RED on every enqueue.

    Installed by :func:`install_red`: replaces ``port.enqueue`` with a
    RED-checked version (composition, not subclassing, so any port
    configuration keeps working).
    """

    def __init__(self, port: "Port", policy: REDPolicy) -> None:
        self.port = port
        self.policy = policy
        self._inner_enqueue = port.enqueue
        port.enqueue = self._enqueue
        port.red_policy = policy

    def _enqueue(self, frame: EthernetFrame, queue_id: int = 0) -> bool:
        queue = self.port.queue_for(queue_id)
        action = self.policy.on_arrival(queue, frame)
        if action == "drop":
            queue.stats.bytes_dropped += frame.size_bytes
            queue.stats.packets_dropped += 1
            return False
        if action == "mark":
            mark_ce(frame)
        return self._inner_enqueue(frame, queue_id)


def install_red(ports: Iterable["Port"], min_threshold_bytes: int,
                max_threshold_bytes: int, max_probability: float = 0.1,
                weight: float = 0.2,
                rng: Optional[random.Random] = None) -> List[REDQueueAdapter]:
    """Attach an independent RED policy to each port; returns adapters."""
    adapters: List[REDQueueAdapter] = []
    for index, port in enumerate(ports):
        # Per-port streams derived deterministically so runs replay.
        policy = REDPolicy(
            min_threshold_bytes, max_threshold_bytes, max_probability,
            weight,
            rng=rng if rng is not None else random.Random(7919 + index))
        adapters.append(REDQueueAdapter(port, policy))
    return adapters
