"""Wireless channel model for the paper's "other possibilities" example.

Section 2.3's closing paragraph notes that TPPs also apply to wireless
networks, where an access point can annotate packets with channel SNR that
"changes very quickly".  This module provides that rapidly changing state: a
bounded random-walk SNR process that can be attached to any port.  The ASIC
stats layer exposes it as ``[Link:SNR-MilliDb]``, so the same LOAD/PUSH
instructions that read queue sizes can sample the channel.
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING

from repro.sim.simulator import Simulator
from repro.sim.timers import PeriodicTimer

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.net.port import Port


class WirelessChannel:
    """A bounded random-walk SNR process in milli-dB.

    SNR is stored in integer milli-dB because the TPP memory interface moves
    integer words; end-hosts divide by 1000.
    """

    def __init__(self, sim: Simulator, rng: random.Random,
                 mean_snr_db: float = 25.0, step_db: float = 1.5,
                 floor_db: float = 0.0, ceiling_db: float = 45.0,
                 update_interval_ns: int = 100_000) -> None:
        self.sim = sim
        self._rng = rng
        self._mean_milli_db = round(mean_snr_db * 1000)
        self._step_milli_db = round(step_db * 1000)
        self._floor_milli_db = round(floor_db * 1000)
        self._ceiling_milli_db = round(ceiling_db * 1000)
        self.current_snr_milli_db = self._mean_milli_db
        self.updates = 0
        self._timer = PeriodicTimer(sim, update_interval_ns, self._step)

    @property
    def current_snr_db(self) -> float:
        """Current SNR in dB (float view of the integer register)."""
        return self.current_snr_milli_db / 1000.0

    def start(self) -> None:
        """Begin evolving the channel."""
        self._timer.start()

    def stop(self) -> None:
        """Freeze the channel at its current value."""
        self._timer.stop()

    def _step(self) -> None:
        # Mean-reverting random walk: drift toward the mean plus noise.
        drift = (self._mean_milli_db - self.current_snr_milli_db) // 20
        noise = self._rng.randint(-self._step_milli_db, self._step_milli_db)
        value = self.current_snr_milli_db + drift + noise
        value = max(self._floor_milli_db, min(self._ceiling_milli_db, value))
        self.current_snr_milli_db = value
        self.updates += 1


def attach_wireless_channel(port: "Port",
                            channel: WirelessChannel) -> None:
    """Associate a channel with a port so the ASIC stats layer can read it."""
    port.wireless_channel = channel
