"""Egress schedulers for multi-queue ports.

Figure 3's pipeline ends in "egress queues and scheduling": the scheduler
decides, using packet metadata such as priority, when each buffered packet
is transmitted.  Three classic disciplines are provided:

- :class:`FifoScheduler` — single service order across one queue;
- :class:`StrictPriorityScheduler` — queue 0 is highest priority and
  always drains first (can starve lower classes — by design);
- :class:`DeficitRoundRobinScheduler` — byte-accurate weighted sharing
  (Shreedhar & Varghese's DRR), the standard line-rate-friendly WRR.

A scheduler only picks *which queue* sends next; the port owns timing.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Union

from repro.errors import ConfigurationError
from repro.net.queues import DropTailQueue


class FifoScheduler:
    """Serve the single queue in arrival order."""

    def select(self, queues: List[DropTailQueue]) -> Optional[int]:
        """Index of the next queue to serve, or ``None`` if all empty."""
        return 0 if len(queues[0]) else None


class StrictPriorityScheduler:
    """Always serve the lowest-indexed non-empty queue."""

    def select(self, queues: List[DropTailQueue]) -> Optional[int]:
        """Index of the highest-priority backlogged queue."""
        for index, queue in enumerate(queues):
            if len(queue):
                return index
        return None


class DeficitRoundRobinScheduler:
    """Deficit round robin: long-run byte shares proportional to weights.

    Each queue holds a deficit counter; on its turn it receives
    ``quantum * weight`` bytes of credit and may send head packets while
    credit covers them.  Empty queues forfeit their deficit, which is what
    keeps DRR O(1) and work-conserving.
    """

    def __init__(self, weights: Sequence[float],
                 quantum_bytes: int = 1500) -> None:
        if not weights or any(w <= 0 for w in weights):
            raise ConfigurationError(
                f"DRR weights must be positive, got {weights}")
        self.weights = list(weights)
        self.quantum_bytes = quantum_bytes
        self._deficits = [0.0] * len(weights)
        self._current = 0
        self._turn_credited = False

    def select(self, queues: List[DropTailQueue]) -> Optional[int]:
        """Pick the next queue whose deficit covers its head packet.

        A queue's *turn* gets exactly one quantum of credit; the queue
        keeps being selected while its deficit covers head packets, then
        the turn passes on (deficit preserved for backlogged queues).
        """
        if len(queues) != len(self.weights):
            raise ConfigurationError(
                f"scheduler configured for {len(self.weights)} queues, "
                f"port has {len(queues)}")
        if not any(len(queue) for queue in queues):
            return None
        # Each pass credits every queue once; several passes accumulate
        # deficit when packets are much larger than the quantum.
        for _ in range(64 * len(queues)):
            index = self._current
            queue = queues[index]
            if len(queue) == 0:
                self._deficits[index] = 0.0  # forfeit when idle
                self._end_turn()
                continue
            if not self._turn_credited:
                self._deficits[index] += (self.quantum_bytes
                                          * self.weights[index])
                self._turn_credited = True
            head = queue.head_size_bytes()
            if self._deficits[index] >= head:
                self._deficits[index] -= head
                return index
            self._end_turn()
        # Unreachable in practice; stay work-conserving regardless.
        for index, queue in enumerate(queues):
            if len(queue):
                self._deficits[index] = 0.0
                return index
        return None

    def _end_turn(self) -> None:
        self._turn_credited = False
        self._current = (self._current + 1) % len(self.weights)


Scheduler = Union["FifoScheduler", "StrictPriorityScheduler",
                  "DeficitRoundRobinScheduler"]


def make_scheduler(kind: str, n_queues: int,
                   weights: Optional[Sequence[float]] = None) -> Scheduler:
    """Factory used by the port: ``fifo`` / ``priority`` / ``drr``."""
    if kind == "fifo":
        if n_queues != 1:
            raise ConfigurationError("fifo scheduling requires one queue")
        return FifoScheduler()
    if kind == "priority":
        return StrictPriorityScheduler()
    if kind == "drr":
        if weights is None:
            weights = [1.0] * n_queues
        return DeficitRoundRobinScheduler(weights)
    raise ConfigurationError(f"unknown scheduler kind {kind!r}")
