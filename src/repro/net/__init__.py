"""Network substrate: packets, links, queues, hosts, topology, routing.

This package models the parts of a network that the paper takes for granted:
Ethernet framing, store-and-forward links with serialization and propagation
delay, drop-tail queues with byte-level occupancy tracking, end-hosts, and
topology/routing helpers.  The switch itself (the ASIC pipeline of Figure 3)
lives in :mod:`repro.asic` and plugs into the :class:`~repro.net.device.Device`
interface defined here.
"""

from repro.net.addresses import format_mac, format_ipv4, parse_ipv4
from repro.net.device import Device
from repro.net.packet import (
    ETHERTYPE_IPV4,
    ETHERTYPE_TPP,
    Datagram,
    EthernetFrame,
    RawPayload,
)
from repro.net.queues import DropTailQueue, QueueStats
from repro.net.link import Link, connect
from repro.net.port import Port
from repro.net.host import Host
from repro.net.topology import Network, TopologyBuilder
from repro.net.routing import install_shortest_path_routes

__all__ = [
    "format_mac",
    "format_ipv4",
    "parse_ipv4",
    "Device",
    "ETHERTYPE_IPV4",
    "ETHERTYPE_TPP",
    "Datagram",
    "EthernetFrame",
    "RawPayload",
    "DropTailQueue",
    "QueueStats",
    "Link",
    "connect",
    "Port",
    "Host",
    "Network",
    "TopologyBuilder",
    "install_shortest_path_routes",
]
