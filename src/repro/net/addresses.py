"""MAC and IPv4 address helpers.

Addresses are plain integers throughout the simulator (cheap to hash and
compare in table lookups); these helpers convert to and from the usual
human-readable notations for traces and error messages.
"""

from __future__ import annotations

from repro.errors import ConfigurationError

MAC_BROADCAST = 0xFFFF_FFFF_FFFF


def format_mac(mac: int) -> str:
    """Render an integer MAC as ``aa:bb:cc:dd:ee:ff``."""
    if not 0 <= mac <= MAC_BROADCAST:
        raise ConfigurationError(f"MAC out of range: {mac:#x}")
    raw = mac.to_bytes(6, "big")
    return ":".join(f"{byte:02x}" for byte in raw)


def parse_mac(text: str) -> int:
    """Parse ``aa:bb:cc:dd:ee:ff`` into an integer MAC."""
    parts = text.split(":")
    if len(parts) != 6:
        raise ConfigurationError(f"malformed MAC {text!r}")
    try:
        raw = bytes(int(part, 16) for part in parts)
    except ValueError as exc:
        raise ConfigurationError(f"malformed MAC {text!r}") from exc
    return int.from_bytes(raw, "big")


def format_ipv4(address: int) -> str:
    """Render an integer IPv4 address as dotted quad."""
    if not 0 <= address <= 0xFFFF_FFFF:
        raise ConfigurationError(f"IPv4 address out of range: {address:#x}")
    raw = address.to_bytes(4, "big")
    return ".".join(str(byte) for byte in raw)


def parse_ipv4(text: str) -> int:
    """Parse a dotted quad into an integer IPv4 address."""
    parts = text.split(".")
    if len(parts) != 4:
        raise ConfigurationError(f"malformed IPv4 address {text!r}")
    try:
        raw = bytes(int(part) for part in parts)
    except ValueError as exc:
        raise ConfigurationError(f"malformed IPv4 address {text!r}") from exc
    return int.from_bytes(raw, "big")


def host_mac(index: int) -> int:
    """Deterministic MAC for the ``index``-th host (02:... locally admin)."""
    return (0x02 << 40) | index


def switch_mac(index: int) -> int:
    """Deterministic MAC for the ``index``-th switch."""
    return (0x06 << 40) | index
