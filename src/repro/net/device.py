"""The interface every packet-handling node implements.

Links deliver frames by calling :meth:`Device.receive` with the index of the
arrival port.  Hosts and switches both subclass :class:`Device`.
"""

from __future__ import annotations

from collections import defaultdict
from typing import TYPE_CHECKING, Dict, List, Optional

from repro.sim.simulator import Simulator
from repro.sim.trace import TraceRecorder

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.net.packet import EthernetFrame
    from repro.net.port import Port


class Device:
    """A named node with numbered ports attached to a simulator."""

    #: Whether this device defers same-instant arrivals for batched
    #: processing.  Links only maintain the ``inbound_at`` ledger for
    #: devices that opt in (the TPP switch); for everything else the
    #: announcements would be dead weight on the delivery hot path.
    batches_ingress = False

    def __init__(self, sim: Simulator, name: str,
                 trace: Optional[TraceRecorder] = None) -> None:
        self.sim = sim
        self.name = name
        self.trace = (trace if trace is not None
                      else TraceRecorder(enabled=False))
        self.ports: List["Port"] = []
        #: In-flight link arrivals, keyed by absolute arrival time.  Each
        #: :class:`~repro.net.link.Link` increments the destination's count
        #: when it schedules a delivery and retires the entry as frames
        #: land.  Maintained by the link layer; devices read the digest
        #: below instead.
        self.inbound_at: Dict[int, int] = defaultdict(int)
        #: Digest of the ledger, refreshed by the delivering link just
        #: before each ``receive`` callback: the number of *other* frames
        #: still due this instant.  The switch uses this to run its
        #: pipeline inline when no same-instant batch is possible.  Every
        #: announced arrival is eventually retired — delivered to
        #: ``receive``, or written off by a loss tombstone when the copy
        #: dies in flight — so the count always returns to zero by the
        #: end of each instant and stale instants cannot accumulate.
        self.inbound_now = 0

    def add_port(self, port: "Port") -> int:
        """Attach a port; returns its index on this device."""
        port.device = self
        port.index = len(self.ports)
        self.ports.append(port)
        return port.index

    def port(self, index: int) -> "Port":
        """The port at ``index`` (raises ``IndexError`` if absent)."""
        return self.ports[index]

    def receive(self, frame: "EthernetFrame", in_port: int) -> None:
        """Handle a frame arriving on ``in_port``.  Subclasses override."""
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name}>"
