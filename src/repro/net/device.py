"""The interface every packet-handling node implements.

Links deliver frames by calling :meth:`Device.receive` with the index of the
arrival port.  Hosts and switches both subclass :class:`Device`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional

from repro.sim.simulator import Simulator
from repro.sim.trace import TraceRecorder

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.net.packet import EthernetFrame
    from repro.net.port import Port


class Device:
    """A named node with numbered ports attached to a simulator."""

    def __init__(self, sim: Simulator, name: str,
                 trace: Optional[TraceRecorder] = None) -> None:
        self.sim = sim
        self.name = name
        self.trace = (trace if trace is not None
                      else TraceRecorder(enabled=False))
        self.ports: List["Port"] = []

    def add_port(self, port: "Port") -> int:
        """Attach a port; returns its index on this device."""
        port.device = self
        port.index = len(self.ports)
        self.ports.append(port)
        return port.index

    def port(self, index: int) -> "Port":
        """The port at ``index`` (raises ``IndexError`` if absent)."""
        return self.ports[index]

    def receive(self, frame: "EthernetFrame", in_port: int) -> None:
        """Handle a frame arriving on ``in_port``.  Subclasses override."""
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name}>"
