"""Point-to-point links: serialization plus propagation delay.

A :class:`Link` is unidirectional (one transmitter, one receiver endpoint);
:func:`connect` wires a full-duplex pair between two device ports.  The
transmit side is driven by the :class:`~repro.net.port.Port` that owns it —
the port dequeues a packet, occupies the link for the packet's serialization
time, and the link delivers the frame to the far device after the
propagation delay.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro import units
from repro.errors import ConfigurationError
from repro.net.packet import EthernetFrame
from repro.sim.simulator import Simulator

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.net.device import Device
    from repro.net.port import Port


class Link:
    """One direction of a wire: ``rate_bps`` and ``delay_ns`` to the peer."""

    def __init__(self, sim: Simulator, rate_bps: int, delay_ns: int = 1_000,
                 name: str = "") -> None:
        if rate_bps <= 0:
            raise ConfigurationError(f"link rate must be positive: {rate_bps}")
        if delay_ns < 0:
            raise ConfigurationError(f"link delay must be >= 0: {delay_ns}")
        self.sim = sim
        self.rate_bps = rate_bps
        self.delay_ns = delay_ns
        self.name = name
        self.peer_device: Optional["Device"] = None
        self.peer_port_index: Optional[int] = None
        #: Administrative / physical state.  A downed link silently loses
        #: every frame handed to it (and everything already in flight
        #: arrives — photons in the fiber don't care about the failure).
        self.up = True
        self.bytes_delivered = 0
        self.frames_delivered = 0
        self.frames_lost = 0

    def attach_receiver(self, device: "Device", port_index: int) -> None:
        """Set the device/port that frames on this link arrive at."""
        self.peer_device = device
        self.peer_port_index = port_index

    def serialization_time_ns(self, frame: EthernetFrame) -> int:
        """Time to clock the frame's bytes onto the wire."""
        return units.transmission_time_ns(frame.size_bytes, self.rate_bps)

    def fail(self) -> None:
        """Take the link down; subsequent frames are lost."""
        self.up = False

    def restore(self) -> None:
        """Bring the link back up."""
        self.up = True

    def deliver_after_propagation(self, frame: EthernetFrame) -> None:
        """Schedule arrival at the peer one propagation delay from now.

        Called by the owning port at the instant serialization completes.
        """
        if self.peer_device is None or self.peer_port_index is None:
            raise ConfigurationError(f"link {self.name!r} has no receiver")
        if not self.up:
            self.frames_lost += 1
            trace = self.peer_device.trace
            if trace.wants("link.lost"):
                trace.emit(self.sim.now_ns, self.name or "link", "link.lost",
                           frame_uid=frame.uid, size_bytes=frame.size_bytes)
            return
        self.sim.schedule(self.delay_ns, self._arrive, frame)

    def _arrive(self, frame: EthernetFrame) -> None:
        self.bytes_delivered += frame.size_bytes
        self.frames_delivered += 1
        peer = self.peer_device
        assert peer is not None
        assert self.peer_port_index is not None
        trace = peer.trace
        if trace.wants("link.deliver"):
            # DEBUG firehose: one record per frame per link traversal.
            trace.emit(self.sim.now_ns, self.name or "link", "link.deliver",
                       frame_uid=frame.uid, size_bytes=frame.size_bytes,
                       dst_device=peer.name, port=self.peer_port_index)
        peer.receive(frame, self.peer_port_index)


def connect(sim: Simulator, device_a: "Device", device_b: "Device",
            rate_bps: int, delay_ns: int = 1_000,
            queue_capacity_bytes: int = 512 * 1024,
            n_queues: int = 1, scheduler: str = "fifo",
            scheduler_weights=None) -> tuple:
    """Create a full-duplex connection between two devices.

    Adds one new port to each device, backed by ``n_queues`` drop-tail
    queues of ``queue_capacity_bytes`` each (scheduled per ``scheduler``),
    and returns ``(port_on_a, port_on_b)``.
    """
    from repro.net.port import Port  # local import to avoid a cycle

    link_ab = Link(sim, rate_bps, delay_ns,
                   name=f"{device_a.name}->{device_b.name}")
    link_ba = Link(sim, rate_bps, delay_ns,
                   name=f"{device_b.name}->{device_a.name}")

    port_a = Port(sim, link_ab, queue_capacity_bytes, n_queues,
                  scheduler, scheduler_weights)
    port_b = Port(sim, link_ba, queue_capacity_bytes, n_queues,
                  scheduler, scheduler_weights)
    index_a = device_a.add_port(port_a)
    index_b = device_b.add_port(port_b)

    link_ab.attach_receiver(device_b, index_b)
    link_ba.attach_receiver(device_a, index_a)
    return port_a, port_b
