"""Point-to-point links: serialization plus propagation delay.

A :class:`Link` is unidirectional (one transmitter, one receiver endpoint);
:func:`connect` wires a full-duplex pair between two device ports.  The
transmit side is driven by the :class:`~repro.net.port.Port` that owns it —
the port dequeues a packet, occupies the link for the packet's serialization
time, and the link delivers the frame to the far device after the
propagation delay.

Impairments
-----------

A link may carry a seeded :class:`LinkImpairments` model (loss, corruption,
duplication), the fault-injection layer the probe-reliability machinery in
:mod:`repro.endhost.client` is tested against.  The unimpaired hot path
pays a single ``is None`` check; all stochastic work lives behind it.
Corruption damages the *packet memory* of a TPP in flight (truncation or
bit-flips — what a mangled length field or soft error does to the part of
the packet the reliability layer must parse defensively); a corrupted
non-TPP frame is dropped at the receiver the way a bad-FCS frame would be.
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING, Dict, Optional, Sequence, Tuple

from repro import units
from repro.errors import ConfigurationError
from repro.net.packet import EthernetFrame
from repro.sim.simulator import Simulator
from repro.sim.trace import TraceRecorder

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.net.device import Device
    from repro.net.port import Port


class LinkImpairments:
    """Stochastic impairment profile for one link direction.

    Rates are independent per-frame probabilities drawn, in a fixed order
    (loss, then corruption, then duplication), from one seeded stream —
    runs with the same seed and traffic replay bit-identically.
    """

    __slots__ = ("loss_rate", "corrupt_rate", "duplicate_rate", "rng")

    def __init__(self, rng: random.Random, loss_rate: float = 0.0,
                 corrupt_rate: float = 0.0,
                 duplicate_rate: float = 0.0) -> None:
        for name, rate in (("loss_rate", loss_rate),
                           ("corrupt_rate", corrupt_rate),
                           ("duplicate_rate", duplicate_rate)):
            if not 0.0 <= rate <= 1.0:
                raise ConfigurationError(
                    f"{name} must be a probability in [0, 1], got {rate}")
        self.rng = rng
        self.loss_rate = loss_rate
        self.corrupt_rate = corrupt_rate
        self.duplicate_rate = duplicate_rate


class Link:
    """One direction of a wire: ``rate_bps`` and ``delay_ns`` to the peer."""

    def __init__(self, sim: Simulator, rate_bps: int, delay_ns: int = 1_000,
                 name: str = "") -> None:
        if rate_bps <= 0:
            raise ConfigurationError(f"link rate must be positive: {rate_bps}")
        if delay_ns < 0:
            raise ConfigurationError(f"link delay must be >= 0: {delay_ns}")
        self.sim = sim
        self.rate_bps = rate_bps
        self.delay_ns = delay_ns
        self.name = name
        self.peer_device: Optional["Device"] = None
        self.peer_port_index: Optional[int] = None
        self._peer_inbound: Optional[Dict[int, int]] = None
        #: Administrative / physical state.  A downed link silently loses
        #: every frame handed to it (and everything already in flight
        #: arrives — photons in the fiber don't care about the failure).
        self.up = True
        #: Impairment model, or ``None`` (the default) for a perfect link.
        self.impairments: Optional[LinkImpairments] = None
        self.bytes_delivered = 0
        self.frames_delivered = 0
        self.frames_lost = 0
        self.frames_impaired_lost = 0
        self.frames_corrupted = 0
        self.frames_duplicated = 0

    def attach_receiver(self, device: "Device", port_index: int) -> None:
        """Set the device/port that frames on this link arrive at."""
        self.peer_device = device
        self.peer_port_index = port_index
        # Hot-path alias: the arrival ledger is touched once per frame
        # at schedule time and once at delivery, and only kept at all
        # for receivers that batch their ingress.
        self._peer_inbound = (device.inbound_at if device.batches_ingress
                              else None)

    def serialization_time_ns(self, frame: EthernetFrame) -> int:
        """Time to clock the frame's bytes onto the wire."""
        return units.transmission_time_ns(frame.size_bytes, self.rate_bps)

    def fail(self) -> None:
        """Take the link down; subsequent frames are lost."""
        self.up = False

    def restore(self) -> None:
        """Bring the link back up."""
        self.up = True

    def set_impairments(self, loss_rate: float = 0.0,
                        corrupt_rate: float = 0.0,
                        duplicate_rate: float = 0.0,
                        rng: Optional[random.Random] = None) -> None:
        """Configure (or, with all rates zero, remove) the impairment model.

        The RNG defaults to the simulator's named stream
        ``impair/<link-name>``, so distinct links impair independently and
        deterministically under one experiment seed.
        """
        if not (loss_rate or corrupt_rate or duplicate_rate):
            self.impairments = None
            return
        if rng is None:
            rng = self.sim.rng.stream(f"impair/{self.name or id(self)}")
        self.impairments = LinkImpairments(
            rng, loss_rate=loss_rate, corrupt_rate=corrupt_rate,
            duplicate_rate=duplicate_rate)

    def deliver_after_propagation(self, frame: EthernetFrame) -> None:
        """Schedule arrival at the peer one propagation delay from now.

        Called by the owning port at the instant serialization completes.
        """
        if self.peer_device is None or self.peer_port_index is None:
            raise ConfigurationError(f"link {self.name!r} has no receiver")
        if not self.up:
            self.frames_lost += 1
            trace = self.peer_device.trace
            if trace.wants("link.lost"):
                trace.emit(self.sim.now_ns, self.name or "link", "link.lost",
                           frame_uid=frame.uid, size_bytes=frame.size_bytes,
                           reason="down")
            return
        if self.impairments is not None:
            self._deliver_impaired(frame)
            return
        # _schedule_arrival, inlined: this is the per-frame hot path.
        event = self.sim.schedule(self.delay_ns, self._arrive, frame)
        arrivals = self._peer_inbound
        if arrivals is not None:
            arrivals[event.time_ns] += 1

    # ------------------------------------------------------------------ #
    # Impaired delivery (off the hot path: only runs when configured)
    # ------------------------------------------------------------------ #

    def _deliver_impaired(self, frame: EthernetFrame) -> None:
        imp = self.impairments
        assert imp is not None
        rng = imp.rng
        trace = self.peer_device.trace if self.peer_device else None
        # A wire duplicate is an independent copy of the *transmitted*
        # signal: it is cloned before any damage to the original and
        # rolls its own loss/corruption.  The draw order is fixed —
        # loss(orig), corrupt(orig), dup?, then loss(dup)/corrupt(dup)
        # only when the dup roll fired — so a given seed replays one
        # byte-identical delivery sequence, regardless of outcomes.
        pristine = frame.clone() if imp.duplicate_rate else None
        self._impair_one(frame, imp, rng, trace)
        if pristine is not None and rng.random() < imp.duplicate_rate:
            self.frames_duplicated += 1
            if trace is not None and trace.wants("link.dup"):
                trace.emit(self.sim.now_ns, self.name or "link", "link.dup",
                           frame_uid=frame.uid, size_bytes=pristine.size_bytes)
            self._impair_one(pristine, imp, rng, trace)

    def _impair_one(self, frame: EthernetFrame, imp: "LinkImpairments",
                    rng: random.Random,
                    trace: Optional[TraceRecorder]) -> None:
        """Loss and corruption rolls for one copy; schedules its arrival.

        Verdicts are *drawn* here, at transmit time — the draw order is
        part of the determinism contract — but realized at the receiver:
        a copy that the rolls kill still occupies its arrival instant on
        the wire, so it is announced in the peer's ledger like any other
        delivery and retired by a tombstone when it would have landed.
        Dropping it silently at transmit would leave nothing to announce
        and, worse, the inverse design (announce, then forget) would
        leave a stale ledger instant behind for every in-flight loss.
        """
        if imp.loss_rate and rng.random() < imp.loss_rate:
            self._schedule_tombstone(frame, "impairment")
            return
        if imp.corrupt_rate and rng.random() < imp.corrupt_rate:
            damaged = self._corrupt(frame, rng, trace)
            if damaged is None:
                # Unreceivable (bad FCS at the far NIC): the bytes still
                # cross the wire and die on arrival.
                self._schedule_tombstone(frame, "corrupt-fcs")
                return
            frame = damaged
        self._schedule_arrival(frame)

    def _corrupt(self, frame: EthernetFrame, rng: random.Random,
                 trace: Optional[TraceRecorder]
                 ) -> Optional[EthernetFrame]:
        """Damage the frame in flight; ``None`` means it was unreceivable.

        TPP frames get their packet memory truncated or bit-flipped —
        exactly the malformed input :class:`~repro.endhost.client.
        TPPResultView` and the ndb collector must survive.  Anything else
        fails its FCS at the receiving NIC and is counted as lost.
        """
        from repro.core.tpp import TPPSection  # deferred: import cycle
        tpp = frame.payload
        if not isinstance(tpp, TPPSection):
            # Loss accounting and the ``link.lost`` trace happen at the
            # receiver (``_arrive_dead``), where the FCS check would run.
            return None
        self.frames_corrupted += 1
        damage = "bitflip"
        memory = tpp.memory
        if memory and rng.random() < 0.5:
            # Truncate to a shorter (still 4-aligned) memory: the short
            # read a mangled length field produces downstream.
            keep = rng.randrange(0, len(memory) // 4) * 4
            del memory[keep:]
            frame.invalidate_size_cache()
            damage = "truncate"
        elif memory:
            for _ in range(rng.randint(1, min(8, len(memory)))):
                memory[rng.randrange(len(memory))] ^= 1 << rng.randrange(8)
        else:
            # No memory to damage: scramble the hop/SP field instead.
            tpp.hop_or_sp ^= 1 << rng.randrange(16)
            damage = "header"
        # Every damage mode bypasses the TPP's mutator methods, so its
        # memoized fingerprint / wire bytes / length are all stale now.
        tpp.invalidate_caches()
        if trace is not None and trace.wants("link.corrupt"):
            trace.emit(self.sim.now_ns, self.name or "link", "link.corrupt",
                       frame_uid=frame.uid, size_bytes=frame.size_bytes,
                       damage=damage)
        return frame

    def _schedule_arrival(self, frame: EthernetFrame) -> None:
        """Schedule ``_arrive`` and announce it in the peer's ledger.

        The announcement is what lets the receiving switch decide, from
        inside its ``receive`` callback, whether any *other* frame can
        still land this instant (and therefore whether deferring for a
        TCPU batch is worthwhile).  With a positive propagation delay
        every arrival for time ``t`` is announced before ``t`` begins,
        so the ledger is a complete signal; a zero-delay link can
        announce mid-instant, which at worst forgoes a batch.

        Non-batching receivers (hosts) have no ledger; ``deliver_after_
        propagation`` inlines this body on its unimpaired hot path.
        """
        event = self.sim.schedule(self.delay_ns, self._arrive, frame)
        arrivals = self._peer_inbound
        if arrivals is not None:
            arrivals[event.time_ns] += 1

    def _schedule_tombstone(self, frame: EthernetFrame, reason: str) -> None:
        """Announce a copy whose in-flight death is already decided.

        The ledger must see every wire copy: the announcement is made
        exactly like a live delivery, and ``_arrive_dead`` retires it at
        the arrival instant without invoking ``receive``.  This is the
        decrement path for announced-then-lost frames — without it the
        instant's count would never return to zero and the receiver
        would keep scheduling drains for a frame that is not coming.
        """
        event = self.sim.schedule(self.delay_ns, self._arrive_dead,
                                  frame, reason)
        arrivals = self._peer_inbound
        if arrivals is not None:
            arrivals[event.time_ns] += 1

    def _retire_announcement(self) -> None:
        """Retire one ledger entry for the current instant.

        (``_arrive`` inlines this same logic on the delivery hot path;
        keep the two in sync.)
        """
        arrivals = self._peer_inbound
        if arrivals is None:
            return
        peer = self.peer_device
        assert peer is not None
        now = self.sim.now_ns
        remaining = arrivals.pop(now, 1) - 1
        if remaining > 0:
            arrivals[now] = remaining
            peer.inbound_now = remaining
        else:
            peer.inbound_now = 0

    def _arrive_dead(self, frame: EthernetFrame, reason: str) -> None:
        """A lost or FCS-failed copy reaches the receiver: count it,
        retire its ledger entry, deliver nothing."""
        self.frames_lost += 1
        self.frames_impaired_lost += 1
        self._retire_announcement()
        peer = self.peer_device
        assert peer is not None
        trace = peer.trace
        if trace.wants("link.lost"):
            trace.emit(self.sim.now_ns, self.name or "link", "link.lost",
                       frame_uid=frame.uid, size_bytes=frame.size_bytes,
                       reason=reason)

    def _arrive(self, frame: EthernetFrame) -> None:
        self.bytes_delivered += frame.size_bytes
        self.frames_delivered += 1
        peer = self.peer_device
        assert peer is not None
        assert self.peer_port_index is not None
        arrivals = self._peer_inbound
        if arrivals is not None:
            # Retire this frame's ledger entry and hand the peer a
            # digest — the count it observes in receive() is only the
            # still-due peers.
            now = self.sim.now_ns
            remaining = arrivals.pop(now, 1) - 1
            if remaining > 0:
                arrivals[now] = remaining
                peer.inbound_now = remaining
            else:
                peer.inbound_now = 0
        trace = peer.trace
        if trace.wants("link.deliver"):
            # DEBUG firehose: one record per frame per link traversal.
            trace.emit(self.sim.now_ns, self.name or "link", "link.deliver",
                       frame_uid=frame.uid, size_bytes=frame.size_bytes,
                       dst_device=peer.name, port=self.peer_port_index)
        peer.receive(frame, self.peer_port_index)


def connect(sim: Simulator, device_a: "Device", device_b: "Device",
            rate_bps: int, delay_ns: int = 1_000,
            queue_capacity_bytes: int = 512 * 1024,
            n_queues: int = 1, scheduler: str = "fifo",
            scheduler_weights: Optional[Sequence[float]] = None,
            ) -> Tuple["Port", "Port"]:
    """Create a full-duplex connection between two devices.

    Adds one new port to each device, backed by ``n_queues`` drop-tail
    queues of ``queue_capacity_bytes`` each (scheduled per ``scheduler``),
    and returns ``(port_on_a, port_on_b)``.
    """
    from repro.net.port import Port  # local import to avoid a cycle

    link_ab = Link(sim, rate_bps, delay_ns,
                   name=f"{device_a.name}->{device_b.name}")
    link_ba = Link(sim, rate_bps, delay_ns,
                   name=f"{device_b.name}->{device_a.name}")

    port_a = Port(sim, link_ab, queue_capacity_bytes, n_queues,
                  scheduler, scheduler_weights)
    port_b = Port(sim, link_ba, queue_capacity_bytes, n_queues,
                  scheduler, scheduler_weights)
    index_a = device_a.add_port(port_a)
    index_b = device_b.add_port(port_b)

    link_ab.attach_receiver(device_b, index_b)
    link_ba.attach_receiver(device_a, index_a)
    return port_a, port_b
