"""A device port: egress queue(s) draining onto a link, plus RX accounting.

The port implements store-and-forward output: frames wait in one or more
drop-tail queues; when the link is idle a scheduler (FIFO by default,
strict-priority or deficit-round-robin optionally — Figure 3's "egress
queues and scheduling" block) picks the next queue, whose head frame
occupies the wire for its serialization time and is then handed to the
link for propagation.  All the per-port statistics the paper's ``Link:``
namespace exposes (bytes received/transmitted, drops — Table 2) are
counted here; per-queue occupancies live in the queues themselves and are
what the ``Queue:`` namespace resolves to.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional, Sequence

from repro.errors import ConfigurationError
from repro.net.link import Link
from repro.net.packet import EthernetFrame
from repro.net.queues import DropTailQueue
from repro.net.schedulers import make_scheduler
from repro.sim.simulator import Simulator

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.net.device import Device


class Port:
    """One numbered port of a device."""

    def __init__(self, sim: Simulator, link: Link,
                 queue_capacity_bytes: int = 512 * 1024,
                 n_queues: int = 1, scheduler: str = "fifo",
                 scheduler_weights: Optional[Sequence[float]] = None
                 ) -> None:
        if n_queues < 1:
            raise ConfigurationError(f"need >= 1 queue, got {n_queues}")
        if scheduler == "fifo" and n_queues > 1:
            scheduler = "priority"
        self.sim = sim
        self.link = link
        self.queues: List[DropTailQueue] = [
            DropTailQueue(queue_capacity_bytes) for _ in range(n_queues)
        ]
        self.scheduler = make_scheduler(scheduler, n_queues,
                                        scheduler_weights)
        self.device: Optional["Device"] = None
        self.index: int = -1
        self._transmitting = False
        # Counters (cumulative since t=0).
        self.tx_bytes = 0
        self.tx_frames = 0
        self.rx_bytes = 0
        self.rx_frames = 0

    @property
    def queue(self) -> DropTailQueue:
        """The default (highest-priority) queue — the single-queue view."""
        return self.queues[0]

    @property
    def n_queues(self) -> int:
        """How many egress queues this port has."""
        return len(self.queues)

    @property
    def rate_bps(self) -> int:
        """Line rate of the attached egress link."""
        return self.link.rate_bps

    def queue_for(self, queue_id: int) -> DropTailQueue:
        """The queue a packet classified to ``queue_id`` joins (clamped
        to the configured queue count, as ASICs do with bad classes)."""
        return self.queues[min(queue_id, len(self.queues) - 1)]

    def total_occupancy_bytes(self) -> int:
        """Sum of all queues' occupancies (buffer usage of the port)."""
        return sum(queue.occupancy_bytes for queue in self.queues)

    def offered_bytes(self) -> int:
        """Cumulative bytes offered to this port's queues (admitted plus
        dropped) — y(t) in the RCP control equation."""
        return sum(queue.stats.bytes_enqueued + queue.stats.bytes_dropped
                   for queue in self.queues)

    def note_rx(self, frame: EthernetFrame) -> None:
        """Account a frame that arrived on this port (called by the device)."""
        self.rx_bytes += frame.size_bytes
        self.rx_frames += 1

    def enqueue(self, frame: EthernetFrame, queue_id: int = 0) -> bool:
        """Queue a frame for transmission; returns ``False`` on tail drop."""
        target = self.queue_for(queue_id)
        accepted = target.offer(frame)
        if accepted and not self._transmitting:
            self._begin_next_transmission()
        device = self.device
        if device is None:
            return accepted
        if not accepted:
            if device.trace.wants("queue.drop"):
                device.trace.emit(
                    self.sim.now_ns, device.name, "queue.drop",
                    port=self.index, queue=queue_id, frame_uid=frame.uid,
                    size_bytes=frame.size_bytes,
                )
        elif device.trace.wants("queue.enqueue"):
            # DEBUG firehose: per-frame admission records for deep queue
            # forensics; free unless a run lowers the trace level.
            device.trace.emit(
                self.sim.now_ns, device.name, "queue.enqueue",
                port=self.index, queue=queue_id, frame_uid=frame.uid,
                size_bytes=frame.size_bytes,
                occupancy_bytes=target.occupancy_bytes,
            )
        return accepted

    def _begin_next_transmission(self) -> None:
        queue_index = self.scheduler.select(self.queues)
        if queue_index is None:
            self._transmitting = False
            return
        frame = self.queues[queue_index].begin_transmit()
        assert frame is not None, "scheduler picked an empty queue"
        self._transmitting = True
        tx_time = self.link.serialization_time_ns(frame)
        self.sim.schedule(tx_time, self._finish_transmission, frame,
                          queue_index)

    def _finish_transmission(self, frame: EthernetFrame,
                             queue_index: int) -> None:
        self.queues[queue_index].transmit_complete(frame)
        self.tx_bytes += frame.size_bytes
        self.tx_frames += 1
        self.link.deliver_after_propagation(frame)
        self._begin_next_transmission()
