"""Network container and topology builders.

A :class:`Network` owns the simulator, the trace recorder, all devices, and
the wiring between them.  :class:`TopologyBuilder` provides the shapes the
experiments use:

- ``linear``   — h0 — sw0 — sw1 — ... — h1 (Figure 1's multi-hop query);
- ``dumbbell`` — n senders and n receivers sharing one bottleneck link
  (Figure 2's RCP experiment);
- ``star``     — one switch, many hosts;
- ``parking_lot`` — a chain of switches with one host pair per switch;
- ``fat_tree`` — a small k-ary fat-tree for the ndb experiments.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro import units
from repro.errors import ConfigurationError
from repro.net.addresses import host_mac, switch_mac
from repro.net.device import Device
from repro.net.host import Host
from repro.net.link import connect
from repro.net.port import Port
from repro.sim.simulator import Simulator
from repro.sim.trace import TraceRecorder


@dataclass
class Edge:
    """An undirected adjacency between two device ports."""

    device_a: str
    port_a: int
    device_b: str
    port_b: int
    rate_bps: int = 0
    delay_ns: int = 0


class Network:
    """All simulation state for one experiment."""

    def __init__(self, seed: int = 0, trace_enabled: bool = True,
                 index_base: int = 0) -> None:
        if index_base < 0:
            raise ConfigurationError(
                f"index_base must be >= 0: {index_base}")
        self.sim = Simulator(seed=seed)
        self.trace = TraceRecorder(enabled=trace_enabled)
        #: The simulator's RNG family (one object, two handles): components
        #: created from a ``Network`` and components that only hold a
        #: ``sim`` reference draw from the same seeded streams.
        self.rng = self.sim.rng
        self.hosts: Dict[str, Host] = {}
        self.switches: Dict[str, Device] = {}
        self.edges: List[Edge] = []
        #: Offset into the global MAC / IP / switch-id number spaces.
        #: Auto-assigned addresses start here, so several ``Network``
        #: instances (the sharded fleet's regions, each with its own
        #: counters) can coexist without address collisions — region r
        #: builds with ``index_base = r * stride`` and every address
        #: stays derivable from the region index alone.
        self.index_base = index_base
        self._host_count = index_base
        self._switch_count = index_base
        self._next_ip = 0x0A00_0001 + index_base  # 10.0.0.1 + base

    # ------------------------------------------------------------------ #
    # Device creation
    # ------------------------------------------------------------------ #

    def add_host(self, name: Optional[str] = None) -> Host:
        """Create a host with auto-assigned MAC and IP."""
        if name is None:
            name = f"h{self._host_count}"
        if name in self.hosts or name in self.switches:
            raise ConfigurationError(f"duplicate device name {name!r}")
        host = Host(self.sim, name, mac=host_mac(self._host_count),
                    ip=self._next_ip, trace=self.trace)
        self._host_count += 1
        self._next_ip += 1
        self.hosts[name] = host
        return host

    def add_switch(self, name: Optional[str] = None,
                   switch_factory: Optional[Callable[..., Device]] = None,
                   switch_id_override: Optional[int] = None,
                   **kwargs: Any) -> Device:
        """Create a TPP-capable switch (or one from ``switch_factory``).

        ``switch_id_override`` replaces the sequential id — experiments
        that encode roles in the id space (e.g. a ToR tag bit for CEXEC
        class targeting) use it.
        """
        if name is None:
            name = f"sw{self._switch_count}"
        if name in self.hosts or name in self.switches:
            raise ConfigurationError(f"duplicate device name {name!r}")
        if switch_factory is None:
            # Imported here: repro.asic depends on repro.net.
            from repro.asic.switch import TPPSwitch
            switch_factory = TPPSwitch
        switch_id = (switch_id_override if switch_id_override is not None
                     else self._switch_count + 1)
        switch = switch_factory(self.sim, name,
                                switch_id=switch_id,
                                mac=switch_mac(self._switch_count),
                                trace=self.trace, **kwargs)
        self._switch_count += 1
        self.switches[name] = switch
        return switch

    def link(self, a: Device, b: Device, rate_bps: int,
             delay_ns: int = 1_000,
             queue_capacity_bytes: int = 512 * 1024,
             n_queues: int = 1, scheduler: str = "fifo",
             scheduler_weights: Optional[Sequence[float]] = None,
             ) -> Tuple[Port, Port]:
        """Wire a full-duplex link and record the adjacency."""
        port_a, port_b = connect(self.sim, a, b, rate_bps, delay_ns,
                                 queue_capacity_bytes, n_queues,
                                 scheduler, scheduler_weights)
        self.edges.append(Edge(a.name, port_a.index, b.name, port_b.index,
                               rate_bps, delay_ns))
        return port_a, port_b

    def impair_links(self, loss_rate: float = 0.0,
                     corrupt_rate: float = 0.0,
                     duplicate_rate: float = 0.0) -> int:
        """Apply one impairment profile to every link in the network.

        Each link direction draws from its own named RNG stream
        (``impair/<link-name>``), so adding or removing traffic on one
        link never perturbs the impairment pattern on another.  Returns
        the number of link directions configured.
        """
        impaired = 0
        for device in self.all_devices():
            for port in device.ports:
                port.link.set_impairments(loss_rate=loss_rate,
                                          corrupt_rate=corrupt_rate,
                                          duplicate_rate=duplicate_rate)
                impaired += 1
        return impaired

    # ------------------------------------------------------------------ #
    # Lookup
    # ------------------------------------------------------------------ #

    def host(self, name: str) -> Host:
        """The host called ``name`` (raises ``KeyError`` if absent)."""
        return self.hosts[name]

    def switch(self, name: str) -> Device:
        """The switch called ``name`` (raises ``KeyError`` if absent)."""
        return self.switches[name]

    def device(self, name: str) -> Device:
        """Any device by name."""
        if name in self.hosts:
            return self.hosts[name]
        return self.switches[name]

    def all_devices(self) -> List[Device]:
        """Hosts then switches, in creation order."""
        return list(self.hosts.values()) + list(self.switches.values())

    def adjacency(self) -> Dict[str, List[Tuple[int, str, int]]]:
        """``name -> [(local_port, peer_name, peer_port), ...]``."""
        result: Dict[str, List[Tuple[int, str, int]]] = {
            d.name: [] for d in self.all_devices()
        }
        for edge in self.edges:
            result[edge.device_a].append(
                (edge.port_a, edge.device_b, edge.port_b))
            result[edge.device_b].append(
                (edge.port_b, edge.device_a, edge.port_a))
        return result

    def run(self, until_seconds: Optional[float] = None) -> int:
        """Run the simulation (optionally until a horizon in seconds)."""
        until_ns = None if until_seconds is None else units.seconds(
            until_seconds)
        return self.sim.run(until_ns=until_ns)


class TopologyBuilder:
    """Builders for the canonical experiment topologies."""

    def __init__(self, seed: int = 0, rate_bps: int = units.GIGABITS_PER_SEC,
                 delay_ns: int = 1_000,
                 queue_capacity_bytes: int = 512 * 1024,
                 trace_enabled: bool = True) -> None:
        self.seed = seed
        self.rate_bps = rate_bps
        self.delay_ns = delay_ns
        self.queue_capacity_bytes = queue_capacity_bytes
        self.trace_enabled = trace_enabled

    def _network(self) -> Network:
        return Network(seed=self.seed, trace_enabled=self.trace_enabled)

    def linear(self, n_switches: int, hosts_per_end: int = 1) -> Network:
        """h0..h{k-1} — sw0 — sw1 — ... — sw{n-1} — h{k}..h{2k-1}."""
        if n_switches < 1:
            raise ConfigurationError("need at least one switch")
        net = self._network()
        switches = [net.add_switch() for _ in range(n_switches)]
        for left, right in zip(switches, switches[1:]):
            net.link(left, right, self.rate_bps, self.delay_ns,
                     self.queue_capacity_bytes)
        for _ in range(hosts_per_end):
            host = net.add_host()
            net.link(host, switches[0], self.rate_bps, self.delay_ns,
                     self.queue_capacity_bytes)
        for _ in range(hosts_per_end):
            host = net.add_host()
            net.link(host, switches[-1], self.rate_bps, self.delay_ns,
                     self.queue_capacity_bytes)
        return net

    def star(self, n_hosts: int) -> Network:
        """One switch with ``n_hosts`` leaves."""
        if n_hosts < 1:
            raise ConfigurationError("need at least one host")
        net = self._network()
        hub = net.add_switch()
        for _ in range(n_hosts):
            host = net.add_host()
            net.link(host, hub, self.rate_bps, self.delay_ns,
                     self.queue_capacity_bytes)
        return net

    def dumbbell(self, n_pairs: int, bottleneck_bps: int,
                 edge_bps: Optional[int] = None) -> Network:
        """n senders — swL ==bottleneck== swR — n receivers.

        Senders are ``h0 .. h{n-1}``, the matching receivers are
        ``h{n} .. h{2n-1}``.  Edge links default to 10x the bottleneck so
        the shared link is the only point of contention.
        """
        if n_pairs < 1:
            raise ConfigurationError("need at least one host pair")
        if edge_bps is None:
            edge_bps = bottleneck_bps * 10
        net = self._network()
        left = net.add_switch("swL")
        right = net.add_switch("swR")
        net.link(left, right, bottleneck_bps, self.delay_ns,
                 self.queue_capacity_bytes)
        for _ in range(n_pairs):
            sender = net.add_host()
            net.link(sender, left, edge_bps, self.delay_ns,
                     self.queue_capacity_bytes)
        for _ in range(n_pairs):
            receiver = net.add_host()
            net.link(receiver, right, edge_bps, self.delay_ns,
                     self.queue_capacity_bytes)
        return net

    def parking_lot(self, n_switches: int) -> Network:
        """A switch chain with one host hanging off each switch.

        Classic multi-bottleneck congestion-control topology: flows between
        non-adjacent hosts share different subsets of the chain links.
        """
        if n_switches < 2:
            raise ConfigurationError("need at least two switches")
        net = self._network()
        switches = [net.add_switch() for _ in range(n_switches)]
        for left, right in zip(switches, switches[1:]):
            net.link(left, right, self.rate_bps, self.delay_ns,
                     self.queue_capacity_bytes)
        for switch in switches:
            host = net.add_host()
            net.link(host, switch, self.rate_bps, self.delay_ns,
                     self.queue_capacity_bytes)
        return net

    def fat_tree(self, k: int = 2) -> Network:
        """A two-tier leaf/spine fabric with ``k`` spines, ``2k`` leaves,
        and two hosts per leaf — enough path diversity for the ndb
        experiments without fat-tree bookkeeping."""
        if k < 1:
            raise ConfigurationError("need at least one spine")
        net = self._network()
        spines = [net.add_switch(f"spine{i}") for i in range(k)]
        leaves = [net.add_switch(f"leaf{i}") for i in range(2 * k)]
        for leaf in leaves:
            for spine in spines:
                net.link(leaf, spine, self.rate_bps, self.delay_ns,
                         self.queue_capacity_bytes)
        for leaf in leaves:
            for _ in range(2):
                host = net.add_host()
                net.link(host, leaf, self.rate_bps, self.delay_ns,
                         self.queue_capacity_bytes)
        return net
