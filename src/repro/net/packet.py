"""Packet model: Ethernet frames and the payloads they carry.

A frame's payload is one of three things:

- :class:`RawPayload` — opaque application bytes of a declared size;
- :class:`Datagram` — a simplified IPv4+UDP header pair around a payload;
- :class:`repro.core.tpp.TPPSection` — a tiny packet program (identified by
  :data:`ETHERTYPE_TPP`), which itself encapsulates an optional inner
  payload, exactly as Figure 4 of the paper lays out.

Sizes are computed from real header constants so queue occupancies and
transmission times reflect what would happen on a wire, and the TPP section
serializes to actual bytes (see :mod:`repro.core.tpp`), which is how the
overhead benchmark (E5) measures the paper's "20 bytes of instruction
overhead" claim rather than asserting it.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, List, Optional

ETHERTYPE_IPV4 = 0x0800
#: The paper requires "a uniquely identifiable header"; we allocate an
#: (unassigned, locally chosen) ethertype for TPPs.
ETHERTYPE_TPP = 0x9999

ETHERNET_HEADER_BYTES = 14
ETHERNET_FCS_BYTES = 4
ETHERNET_MIN_FRAME_BYTES = 64
ETHERNET_MAX_PAYLOAD_BYTES = 1500

IPV4_HEADER_BYTES = 20
UDP_HEADER_BYTES = 8

_frame_uid = itertools.count(1)


@dataclass
class RawPayload:
    """Opaque application payload with a declared size.

    The simulator never inspects the contents; ``data`` exists so tests can
    check end-to-end delivery of specific bytes.
    """

    size_bytes: int
    data: Optional[bytes] = None

    def __post_init__(self) -> None:
        if self.size_bytes < 0:
            raise ValueError(f"payload size must be >= 0: {self.size_bytes}")
        if self.data is not None and len(self.data) > self.size_bytes:
            raise ValueError(
                f"declared size {self.size_bytes} smaller than "
                f"{len(self.data)} data bytes"
            )


@dataclass
class Datagram:
    """A simplified IPv4 + UDP header pair around an inner payload.

    ``congestion_header`` is an optional piggybacked field used by the
    in-network RCP baseline (the shim header the original RCP proposal adds
    between IP and transport); end-host RCP* does not use it.
    """

    src_ip: int
    dst_ip: int
    src_port: int
    dst_port: int
    payload: Any
    protocol: int = 17  # UDP
    #: Type-of-service / traffic class (0 = best effort).  Switches with
    #: multi-queue ports use it as the default queue selector.
    tos: int = 0
    #: ECN field: 0 = not-ECT, 1 = ECT (capable), 3 = CE (congestion
    #: experienced) — the two bits a real IP header carries.
    ecn: int = 0
    congestion_header: Optional[Any] = None
    #: IP Record Route option (§4 contrasts it with TPPs): the sender
    #: preallocates ``route_record_slots`` entries; routers append their
    #: address until the option is full.  ``None`` disables the option.
    route_record: Optional[List[int]] = None
    route_record_slots: int = 0

    def __post_init__(self) -> None:
        if self.route_record_slots and self.route_record is None:
            self.route_record = []

    @property
    def size_bytes(self) -> int:
        """Wire size of IP + UDP headers plus options and inner payload."""
        inner = payload_size(self.payload)
        shim = (self.congestion_header.size_bytes
                if self.congestion_header else 0)
        # RFC 791 record-route option: 3 bytes of option header plus the
        # preallocated 4-byte slots (padded into the IP header options).
        option = (3 + 4 * self.route_record_slots
                  if self.route_record_slots else 0)
        return IPV4_HEADER_BYTES + option + UDP_HEADER_BYTES + shim + inner


@dataclass
class EthernetFrame:
    """An Ethernet II frame.

    Attributes:
        dst, src: integer MAC addresses.
        ethertype: payload discriminator (IPv4, TPP, ...).
        payload: one of the payload classes described in the module docs.
        uid: unique per-frame id assigned at construction; survives the
            frame's whole journey, which is what ndb keys its traces on.
        hops: filled in by switches as the frame traverses them (trace aid).
    """

    dst: int
    src: int
    ethertype: int
    payload: Any
    uid: int = field(default_factory=lambda: next(_frame_uid))
    hops: List[str] = field(default_factory=list)
    _size_cache: Optional[int] = field(default=None, init=False, repr=False,
                                       compare=False)
    #: Parsed-header view cached by the first switch parser to touch the
    #: frame; later hops reuse it (zero-reparse).  Cleared together with
    #: the size cache, since both are stale for the same reason: the
    #: payload chain changed shape.
    _parsed_cache: Optional[Any] = field(default=None, init=False,
                                         repr=False, compare=False)

    @property
    def size_bytes(self) -> int:
        """Total frame size, padded to the Ethernet minimum.

        The size is computed once and cached — a frame's wire size is
        queried half a dozen times per hop (admission, occupancy, DRR
        deficit, serialization time, RX/TX accounting) and walking the
        nested payload chain each time dominated the forwarding hot path.
        Anything that swaps or resizes the payload after construction must
        call :meth:`invalidate_size_cache` (the switch does this after its
        strip action and after running datagram hooks).
        """
        size = self._size_cache
        if size is None:
            size = (ETHERNET_HEADER_BYTES + payload_size(self.payload)
                    + ETHERNET_FCS_BYTES)
            if size < ETHERNET_MIN_FRAME_BYTES:
                size = ETHERNET_MIN_FRAME_BYTES
            self._size_cache = size
        return size

    def invalidate_size_cache(self) -> None:
        """Force recomputation after a payload mutation changed the size.

        Also drops the cached parsed-header view: any mutation that can
        change the frame's size (payload swap, TPP truncation) can change
        what the parser would extract.
        """
        self._size_cache = None
        self._parsed_cache = None

    def clone(self) -> "EthernetFrame":
        """A wire-identical copy of the frame (same ``uid``).

        Models duplication in flight: both copies are the *same* packet as
        far as end-hosts can tell, so the uid — the simulator's stand-in
        for packet identity — is preserved rather than reallocated.
        Mutable payloads (TPP sections, whose packet memory switches write
        into) are deep-copied so the twins diverge independently; opaque
        payloads are shared.
        """
        payload = self.payload
        copier = getattr(payload, "copy", None)
        if copier is not None:
            payload = copier()
        twin = EthernetFrame(dst=self.dst, src=self.src,
                             ethertype=self.ethertype, payload=payload)
        twin.uid = self.uid
        twin.hops = list(self.hops)
        return twin


def payload_size(payload: Any) -> int:
    """Size in bytes of any payload object (``None`` counts as empty)."""
    if payload is None:
        return 0
    size = getattr(payload, "size_bytes", None)
    if size is None:
        raise TypeError(f"payload {payload!r} has no size_bytes")
    return size


def innermost_payload(frame_or_payload: Any) -> Any:
    """Follow nested payloads down to the application payload.

    Used by hosts to deliver data regardless of whether a TPP section was
    wrapped around it (or stripped at the network edge).
    """
    current = frame_or_payload
    while True:
        inner = getattr(current, "payload", None)
        if inner is None:
            return current
        current = inner
