"""``run_experiment`` — the paper's experiments from the shell.

Scaled-down (seconds, not minutes) versions of the benchmark harness for
interactive exploration::

    python -m repro.tools.run_experiment fig1
    python -m repro.tools.run_experiment fig2 --duration 12
    python -m repro.tools.run_experiment microburst
    python -m repro.tools.run_experiment ndb

Full-fidelity runs with shape assertions live in ``benchmarks/``.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro import units
from repro.analysis.reporting import ascii_plot
from repro.analysis.timeseries import TimeSeries


def cmd_fig1(args: argparse.Namespace) -> int:
    from repro import quickstart_network
    from repro.core import assemble

    net = quickstart_network(n_switches=args.switches)
    h0 = net.host("h0")
    last = net.host("h1")
    results = []
    h0.tpp.send(assemble("PUSH [Switch:SwitchID]\nPUSH [Queue:QueueSize]",
                         hops=args.switches),
                dst_mac=last.mac, on_response=results.append)
    net.run(until_seconds=0.05)
    print("per-hop samples (switch id, queue bytes):")
    for hop, words in enumerate(results[0].per_hop_words()):
        print(f"  hop {hop}: {tuple(words)}")
    return 0


def cmd_fig2(args: argparse.Namespace) -> int:
    from repro.apps.rcp import RCPStarFlow, RCPStarTask
    from repro.control.agent import ControlPlaneAgent
    from repro.core.memory_map import MemoryMap
    from repro.net.routing import install_shortest_path_routes
    from repro.net.topology import TopologyBuilder
    from repro.sim.timers import PeriodicTimer

    capacity = 10 * units.MEGABITS_PER_SEC
    builder = TopologyBuilder(rate_bps=10 * capacity,
                              delay_ns=units.milliseconds(1))
    net = builder.dumbbell(n_pairs=3, bottleneck_bps=capacity)
    install_shortest_path_routes(net)
    for switch in net.switches.values():
        switch.start_stats(interval_ns=units.milliseconds(5))
    agent = ControlPlaneAgent(list(net.switches.values()),
                              memory_map=MemoryMap.standard())
    task = RCPStarTask(agent)
    flows = [RCPStarFlow(task, i, net.host(f"h{i}"), net.host(f"h{i + 3}"),
                         net.host(f"h{i + 3}").mac, capacity_bps=capacity,
                         rtt_s=0.02, max_hops=3) for i in range(3)]
    third = args.duration / 3
    flows[0].start()
    net.sim.schedule(units.seconds(third), flows[1].start)
    net.sim.schedule(units.seconds(2 * third), flows[2].start)
    swL = net.switch("swL")
    series = TimeSeries("R/C")
    PeriodicTimer(net.sim, units.milliseconds(50),
                  lambda: series.append(
                      net.sim.now_ns,
                      task.rate_register_bps(swL, 0) / capacity)).start()
    net.run(until_seconds=args.duration)
    print(ascii_plot(series, title="RCP*: R(t)/C on the bottleneck",
                     y_min=0, y_max=1.1, width=70, height=14))
    return 0


def cmd_microburst(args: argparse.Namespace) -> int:
    from repro.apps.microburst import (
        BurstDetector, BurstyTrafficGenerator, TelemetryStream)
    from repro.endhost.client import TPPEndpoint
    from repro.endhost.flows import Flow, FlowSink
    from repro.net.routing import install_shortest_path_routes
    from repro.net.topology import Network

    net = Network(seed=args.seed)
    switch = net.add_switch()
    for name in ("h0", "h1", "h2"):
        host = net.add_host(name)
        rate = (100 * units.MEGABITS_PER_SEC if name == "h2"
                else units.GIGABITS_PER_SEC)
        net.link(host, switch, rate, delay_ns=5_000)
    install_shortest_path_routes(net)
    h0, h1, h2 = (net.host(f"h{i}") for i in range(3))
    FlowSink(h2, 99)
    flow = Flow(h1, h2, h2.mac, 99, rate_bps=0, packet_bytes=1000)
    BurstyTrafficGenerator(flow, units.GIGABITS_PER_SEC,
                           units.microseconds(400),
                           units.milliseconds(20),
                           rng=net.rng.stream("bursts")).start()
    stream = TelemetryStream(h0, h2.mac,
                             interval_ns=units.microseconds(100))
    TPPEndpoint(h2)
    stream.start(first_delay_ns=1)
    net.run(until_seconds=args.duration)
    series = stream.series_for(1)
    bursts = BurstDetector(8_000).detect(series)
    print(f"{len(series)} telemetry samples, "
          f"{len(bursts)} micro-bursts detected")
    for burst in bursts[:10]:
        print(f"  t={burst.start_ns / 1e6:9.2f} ms  "
              f"{burst.duration_ns / 1e3:7.0f} us  "
              f"peak {burst.peak_bytes / 1024:6.1f} KiB")
    return 0


def cmd_ndb(args: argparse.Namespace) -> int:
    from repro.apps.ndb import NdbCollector, NdbTagger, PathVerifier
    from repro.asic.tables import TcamRule
    from repro.endhost.flows import Flow, FlowSink
    from repro.net.routing import (host_path,
                                   install_shortest_path_routes)
    from repro.net.topology import TopologyBuilder

    net = TopologyBuilder(rate_bps=units.GIGABITS_PER_SEC).fat_tree(k=2)
    install_shortest_path_routes(net)
    h0, h2 = net.host("h0"), net.host("h2")
    FlowSink(h2, 99)
    collector = NdbCollector(h2)
    tagger = NdbTagger(hops=5)
    flow = Flow(h0, h2, h2.mac, 99, rate_bps=20 * units.MEGABITS_PER_SEC,
                packet_bytes=500)
    tagger.attach(flow)
    path = host_path(net, "h0", "h2")
    expected = [net.switch(n).switch_id for n in path
                if n in net.switches]
    current = {}
    for switch in net.switches.values():
        entry = switch.l2.entry_for(h2.mac)
        if entry:
            current[switch.switch_id] = (entry.entry_id, entry.version)
    leaf = net.switches[path[1]]
    wrong = next(local for local, peer, _ in net.adjacency()[leaf.name]
                 if peer.startswith("spine") and peer != path[2])
    net.sim.schedule(units.milliseconds(20),
                     lambda: leaf.install_tcam_rule(
                         TcamRule(priority=99, out_port=wrong,
                                  dst_mac=h2.mac)))
    flow.start()
    net.run(until_seconds=0.04)
    violations = PathVerifier(expected, current).verify(collector.journeys)
    print(f"journeys: {len(collector.journeys)}, "
          f"violations: {len(violations)}")
    if violations:
        print(f"first: {violations[0].kind}: {violations[0].detail}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="run_experiment",
        description="scaled-down runs of the paper's experiments")
    commands = parser.add_subparsers(dest="command", required=True)

    fig1 = commands.add_parser("fig1", help="Figure 1 queue-size query")
    fig1.add_argument("--switches", type=int, default=3)
    fig1.set_defaults(func=cmd_fig1)

    fig2 = commands.add_parser("fig2", help="Figure 2 RCP* convergence")
    fig2.add_argument("--duration", type=float, default=9.0)
    fig2.set_defaults(func=cmd_fig2)

    microburst = commands.add_parser("microburst",
                                     help="§2.1 burst detection")
    microburst.add_argument("--duration", type=float, default=1.0)
    microburst.add_argument("--seed", type=int, default=0)
    microburst.set_defaults(func=cmd_microburst)

    ndb = commands.add_parser("ndb", help="§2.3 forwarding debugger")
    ndb.set_defaults(func=cmd_ndb)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
