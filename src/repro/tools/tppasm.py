"""``tppasm`` — the TPP assembler as a command-line tool.

Subcommands::

    assemble <file|->   compile assembly; print wire bytes and a size
                        breakdown (--symbols NAME=VALUE, --hops N)
    disassemble <hex>   decode a hex-encoded TPP section back to assembly
    memmap              print the network-wide memory map (Table 2's
                        namespaces with addresses and writability)

Examples::

    echo 'PUSH [Queue:QueueSize]' | python -m repro.tools.tppasm assemble -
    python -m repro.tools.tppasm memmap | grep Queue
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.core.assembler import assemble
from repro.core.disassembler import format_tpp
from repro.core.exceptions import AssemblerError, TPPEncodingError
from repro.core.memory_map import MemoryMap
from repro.core.tpp import TPPSection


def _parse_symbols(pairs: List[str]) -> dict:
    symbols = {}
    for pair in pairs:
        name, _, value = pair.partition("=")
        if not name or not value:
            raise SystemExit(f"bad symbol {pair!r}, expected NAME=VALUE")
        symbols[name] = int(value, 0)
    return symbols


def cmd_assemble(args: argparse.Namespace) -> int:
    if args.source == "-":
        source = sys.stdin.read()
    else:
        with open(args.source) as handle:
            source = handle.read()
    try:
        program = assemble(source, symbols=_parse_symbols(args.symbols),
                           hops=args.hops)
    except AssemblerError as error:
        print(f"assembly error: {error}", file=sys.stderr)
        return 1
    tpp = program.build()
    encoded = tpp.encode()
    print(f"instructions: {program.n_instructions} "
          f"({program.instruction_bytes} bytes)")
    print(f"packet memory: {program.memory_bytes} bytes "
          f"({program.memory_words} words + "
          f"{program.memory_bytes // program.word_size - program.memory_words}"
          f" literal-pool words)")
    print(f"per-hop footprint: {program.perhop_len_bytes} bytes")
    print(f"total TPP section: {len(encoded)} bytes")
    print("wire bytes:")
    for offset in range(0, len(encoded), 16):
        chunk = encoded[offset:offset + 16]
        print(f"  {offset:04x}: {chunk.hex(' ')}")
    return 0


def cmd_disassemble(args: argparse.Namespace) -> int:
    try:
        raw = bytes.fromhex(args.hexbytes.replace(" ", ""))
        tpp = TPPSection.decode(raw)
    except (ValueError, TPPEncodingError) as error:
        print(f"decode error: {error}", file=sys.stderr)
        return 1
    print(format_tpp(tpp))
    return 0


def cmd_memmap(args: argparse.Namespace) -> int:
    memory_map = MemoryMap.standard()
    seen = set()
    rows = []
    for name in memory_map.names():
        vaddr = memory_map.resolve(name)
        if vaddr in seen or name.lower().startswith(("sram:word",
                                                     "link:reg")):
            continue
        seen.add(vaddr)
        descriptor = memory_map.describe(vaddr)
        rows.append((vaddr, name, "rw" if descriptor.writable else "ro",
                     descriptor.description))
    rows.sort()
    print(f"{'vaddr':8} {'access':6} name")
    for vaddr, name, access, description in rows:
        print(f"{vaddr:#06x}  {access:6} {name:40} {description}")
    print(f"{0xC100:#06x}  rw     Link:Reg0..Reg15"
          f"{'':24} per-port scratch registers")
    print(f"{0xD000:#06x}  rw     Sram:Word0..Word1023"
          f"{'':20} per-switch scratch SRAM")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="tppasm", description="TPP assembler / disassembler")
    commands = parser.add_subparsers(dest="command", required=True)

    assemble_cmd = commands.add_parser(
        "assemble", help="compile TPP assembly to wire bytes")
    assemble_cmd.add_argument("source", help="source file, or - for stdin")
    assemble_cmd.add_argument("--symbols", nargs="*", default=[],
                              metavar="NAME=VALUE",
                              help="values for $symbols in the source")
    assemble_cmd.add_argument("--hops", type=int, default=8,
                              help="hops of packet memory to preallocate")
    assemble_cmd.set_defaults(func=cmd_assemble)

    disassemble_cmd = commands.add_parser(
        "disassemble", help="decode a hex TPP section")
    disassemble_cmd.add_argument("hexbytes")
    disassemble_cmd.set_defaults(func=cmd_disassemble)

    memmap_cmd = commands.add_parser(
        "memmap", help="print the unified memory map")
    memmap_cmd.set_defaults(func=cmd_memmap)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
