"""``tppasm`` — the TPP assembler as a command-line tool.

Subcommands::

    assemble <file|->   compile assembly; print wire bytes and a size
                        breakdown (--symbols NAME=VALUE, --hops N);
                        --lint also runs the static verifier and fails
                        on errors
    disassemble <hex>   decode a hex-encoded TPP section back to assembly
    lint <file|->       statically verify assembly without emitting wire
                        bytes; prints TPP0xx diagnostics, exit 1 on
                        errors (--strict: warnings too)
    racecheck <files>   fleet-level SRAM race analysis: treat the given
                        programs as one concurrently-deployed fleet and
                        report cross-program races (TPP020-TPP023);
                        exit 1 on races (--strict: warnings too).
                        --fence NAME=VALUE binds the target switch's
                        stable registers and --sram WORD=VALUE its
                        initial SRAM image (enabling the relational
                        claim-epoch refinement); --switches FILE.json
                        analyses the fleet per switch binding
                        (cross-switch divergence modeling)
    memmap              print the network-wide memory map (Table 2's
                        namespaces with addresses and writability)

All subcommands accept ``--json`` for machine-readable output with the
same exit codes, so the tool drops into CI pipelines directly.

Examples::

    echo 'PUSH [Queue:QueueSize]' | python -m repro.tools.tppasm assemble -
    python -m repro.tools.tppasm lint probe.tpp --max-hops 8
    python -m repro.tools.tppasm racecheck examples/*.tpp
    python -m repro.tools.tppasm memmap | grep Queue
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.core.assembler import assemble
from repro.core.disassembler import format_tpp
from repro.core.exceptions import AssemblerError, TPPEncodingError
from repro.core.memory_map import MemoryMap
from repro.core.racecheck import (
    SwitchBinding,
    check_fleet,
    check_fleet_multiswitch,
    summarize_program,
)
from repro.core.tcpu import DEFAULT_MAX_INSTRUCTIONS
from repro.core.tpp import TPPSection


def _parse_symbols(pairs: List[str]) -> dict:
    symbols = {}
    for pair in pairs:
        name, _, value = pair.partition("=")
        if not name or not value:
            raise SystemExit(f"bad symbol {pair!r}, expected NAME=VALUE")
        symbols[name] = int(value, 0)
    return symbols


def _parse_fences(pairs: List[str],
                  memory_map: MemoryMap) -> Optional[dict]:
    """``Switch:SwitchID=7``-style stable-register bindings, resolved
    to virtual addresses."""
    if not pairs:
        return None
    fences = {}
    for pair in pairs:
        name, _, value = pair.partition("=")
        if not name or not value:
            raise SystemExit(f"bad fence {pair!r}, expected NAME=VALUE")
        try:
            vaddr = memory_map.resolve(name)
        except KeyError:
            raise SystemExit(f"unknown register {name!r} in fence "
                             f"{pair!r}")
        fences[vaddr] = int(value, 0)
    return fences


def _parse_sram(pairs: List[str]) -> Optional[dict]:
    """``WORD=VALUE`` initial-SRAM-image bindings (absolute word
    indices)."""
    if not pairs:
        return None
    sram = {}
    for pair in pairs:
        word, _, value = pair.partition("=")
        if not word or not value:
            raise SystemExit(f"bad sram binding {pair!r}, expected "
                             f"WORD=VALUE")
        sram[int(word, 0)] = int(value, 0)
    return sram


def _load_switches(path: str,
                   memory_map: MemoryMap) -> List[SwitchBinding]:
    """Per-switch bindings from a JSON file::

        {"switches": [{"name": "tor-1",
                       "fence_values": {"Switch:SwitchID": 7},
                       "sram_values": {"0": 5, "1": 12}}, ...]}

    ``fence_values`` keys are register names (or virtual addresses);
    ``sram_values`` keys are absolute SRAM word indices.
    """
    with open(path) as handle:
        spec = json.load(handle)
    bindings = []
    for entry in spec.get("switches", []):
        fences = None
        if entry.get("fence_values"):
            fences = {}
            for name, value in entry["fence_values"].items():
                try:
                    vaddr = memory_map.resolve(name)
                except KeyError:
                    vaddr = int(name, 0)
                fences[vaddr] = int(value)
        sram = None
        if entry.get("sram_values"):
            sram = {int(word, 0) if isinstance(word, str) else int(word):
                    int(value)
                    for word, value in entry["sram_values"].items()}
        bindings.append(SwitchBinding(
            name=str(entry["name"]), fence_values=fences,
            sram_values=sram))
    return bindings


def _read_source(path: str) -> str:
    if path == "-":
        return sys.stdin.read()
    with open(path) as handle:
        return handle.read()


def cmd_assemble(args: argparse.Namespace) -> int:
    try:
        source = _read_source(args.source)
        program = assemble(source, symbols=_parse_symbols(args.symbols),
                           hops=args.hops)
    except OSError as error:
        print(f"cannot read {args.source}: {error}", file=sys.stderr)
        return 1
    except AssemblerError as error:
        if args.json:
            print(json.dumps({"ok": False,
                              "error": f"assembly error: {error}"}))
        else:
            print(f"assembly error: {error}", file=sys.stderr)
        return 1
    lint_result = None
    if args.lint:
        lint_result = program.verify(memory_map=MemoryMap.standard())
    tpp = program.build()
    encoded = tpp.encode()
    if args.json:
        report = {
            "ok": lint_result.ok if lint_result is not None else True,
            "instructions": program.n_instructions,
            "instruction_bytes": program.instruction_bytes,
            "memory_bytes": program.memory_bytes,
            "perhop_len_bytes": program.perhop_len_bytes,
            "section_bytes": len(encoded),
            "wire_hex": encoded.hex(),
        }
        if lint_result is not None:
            report["lint"] = lint_result.to_dict()
        print(json.dumps(report, indent=2))
    else:
        pool_words = (program.memory_bytes // program.word_size
                      - program.memory_words)
        print(f"instructions: {program.n_instructions} "
              f"({program.instruction_bytes} bytes)")
        print(f"packet memory: {program.memory_bytes} bytes "
              f"({program.memory_words} words + {pool_words}"
              f" literal-pool words)")
        print(f"per-hop footprint: {program.perhop_len_bytes} bytes")
        print(f"total TPP section: {len(encoded)} bytes")
        print("wire bytes:")
        for offset in range(0, len(encoded), 16):
            chunk = encoded[offset:offset + 16]
            print(f"  {offset:04x}: {chunk.hex(' ')}")
        if lint_result is not None:
            source_name = "" if args.source == "-" else args.source
            print(lint_result.format(source_name))
    if lint_result is not None and not lint_result.ok:
        return 1
    return 0


def cmd_disassemble(args: argparse.Namespace) -> int:
    try:
        raw = bytes.fromhex(args.hexbytes.replace(" ", ""))
        tpp = TPPSection.decode(raw)
    except (ValueError, TPPEncodingError) as error:
        if args.json:
            print(json.dumps({"ok": False,
                              "error": f"decode error: {error}"}))
        else:
            print(f"decode error: {error}", file=sys.stderr)
        return 1
    if args.json:
        print(json.dumps({
            "ok": True,
            "task_id": tpp.task_id,
            "mode": tpp.mode.name.lower(),
            "word_size": tpp.word_size,
            "hop_or_sp": tpp.hop_or_sp,
            "n_instructions": len(tpp.instructions),
            "memory_bytes": len(tpp.memory),
            "assembly": format_tpp(tpp),
        }, indent=2))
    else:
        print(format_tpp(tpp))
    return 0


def cmd_lint(args: argparse.Namespace) -> int:
    """Statically verify a program; the CI-facing entry point."""
    try:
        source = _read_source(args.source)
        program = assemble(source, symbols=_parse_symbols(args.symbols),
                           hops=args.hops)
    except OSError as error:
        print(f"cannot read {args.source}: {error}", file=sys.stderr)
        return 1
    except AssemblerError as error:
        # An unparseable program is an un-lintable program: report the
        # assembler's complaint in the same shapes lint output uses.
        if args.json:
            print(json.dumps({"ok": False,
                              "error": f"assembly error: {error}"}))
        else:
            print(f"assembly error: {error}", file=sys.stderr)
        return 1
    result = program.verify(
        memory_map=MemoryMap.standard(),
        max_instructions=args.max_instructions,
        max_hops=args.max_hops)
    if args.json:
        print(json.dumps(result.to_dict(), indent=2))
    else:
        source_name = "" if args.source == "-" else args.source
        print(result.format(source_name))
    if not result.ok:
        return 1
    if args.strict and result.warnings:
        return 1
    return 0


def cmd_racecheck(args: argparse.Namespace) -> int:
    """Fleet-level SRAM race analysis; the CI-facing entry point.

    Treats every given source file as a program of the *same* task
    (``--task``) deployed concurrently, builds each program's word-level
    SRAM access summary, and runs the pairwise race pass from
    :mod:`repro.core.racecheck`.  ``--fence``/``--sram`` bind the target
    switch's stable registers and initial SRAM image (per-switch fence
    and relational claim-epoch refinements); ``--switches`` analyses the
    fleet once per binding in a JSON file and reports per switch.  Exit
    1 when any error-severity race (TPP020/TPP022) is found on any
    switch, or — with ``--strict`` — when any diagnostic at all
    survives (read-write warnings and claim-coordination notes
    included).
    """
    memory_map = MemoryMap.standard()
    symbols = _parse_symbols(args.symbols)
    summaries = []
    for path in args.sources:
        try:
            source = _read_source(path)
            program = assemble(source, symbols=symbols, hops=args.hops)
        except OSError as error:
            print(f"cannot read {path}: {error}", file=sys.stderr)
            return 1
        except AssemblerError as error:
            if args.json:
                print(json.dumps({
                    "ok": False,
                    "error": f"assembly error in {path}: {error}"}))
            else:
                print(f"assembly error in {path}: {error}",
                      file=sys.stderr)
            return 1
        summaries.append(
            summarize_program(program, task_id=args.task, name=path))
    if args.switches:
        try:
            bindings = _load_switches(args.switches, memory_map)
        except (OSError, ValueError, KeyError) as error:
            print(f"cannot load {args.switches}: {error}",
                  file=sys.stderr)
            return 1
        multi = check_fleet_multiswitch(summaries, bindings)
        if args.json:
            print(json.dumps(multi.to_dict(), indent=2))
        else:
            print(multi.format())
        if not multi.ok:
            return 1
        if args.strict and not multi.race_free:
            return 1
        return 0
    report = check_fleet(
        summaries,
        fence_values=_parse_fences(args.fence, memory_map),
        sram_values=_parse_sram(args.sram))
    if args.json:
        print(json.dumps(report.to_dict(), indent=2))
    else:
        print(report.format())
    if not report.ok:
        return 1
    if args.strict and not report.race_free:
        return 1
    return 0


def cmd_memmap(args: argparse.Namespace) -> int:
    memory_map = MemoryMap.standard()
    seen = set()
    rows = []
    for name in memory_map.names():
        vaddr = memory_map.resolve(name)
        if vaddr in seen or name.lower().startswith(("sram:word",
                                                     "link:reg")):
            continue
        seen.add(vaddr)
        descriptor = memory_map.describe(vaddr)
        rows.append((vaddr, name, "rw" if descriptor.writable else "ro",
                     descriptor.description))
    rows.sort()
    if args.json:
        print(json.dumps({
            "entries": [
                {"vaddr": vaddr, "name": name, "access": access,
                 "description": description}
                for vaddr, name, access, description in rows
            ],
            "ranges": [
                {"vaddr": 0xC100, "name": "Link:Reg0..Reg15",
                 "access": "rw",
                 "description": "per-port scratch registers"},
                {"vaddr": 0xD000, "name": "Sram:Word0..Word1023",
                 "access": "rw",
                 "description": "per-switch scratch SRAM"},
            ],
        }, indent=2))
        return 0
    print(f"{'vaddr':8} {'access':6} name")
    for vaddr, name, access, description in rows:
        print(f"{vaddr:#06x}  {access:6} {name:40} {description}")
    print(f"{0xC100:#06x}  rw     Link:Reg0..Reg15"
          f"{'':24} per-port scratch registers")
    print(f"{0xD000:#06x}  rw     Sram:Word0..Word1023"
          f"{'':20} per-switch scratch SRAM")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="tppasm", description="TPP assembler / disassembler")
    commands = parser.add_subparsers(dest="command", required=True)

    assemble_cmd = commands.add_parser(
        "assemble", help="compile TPP assembly to wire bytes")
    assemble_cmd.add_argument("source", help="source file, or - for stdin")
    assemble_cmd.add_argument("--symbols", nargs="*", default=[],
                              metavar="NAME=VALUE",
                              help="values for $symbols in the source")
    assemble_cmd.add_argument("--hops", type=int, default=8,
                              help="hops of packet memory to preallocate")
    assemble_cmd.add_argument("--lint", action="store_true",
                              help="also run the static verifier; "
                                   "exit 1 on verification errors")
    assemble_cmd.add_argument("--json", action="store_true",
                              help="machine-readable output")
    assemble_cmd.set_defaults(func=cmd_assemble)

    disassemble_cmd = commands.add_parser(
        "disassemble", help="decode a hex TPP section")
    disassemble_cmd.add_argument("hexbytes")
    disassemble_cmd.add_argument("--json", action="store_true",
                                 help="machine-readable output")
    disassemble_cmd.set_defaults(func=cmd_disassemble)

    lint_cmd = commands.add_parser(
        "lint", help="statically verify TPP assembly (no wire output)")
    lint_cmd.add_argument("source", help="source file, or - for stdin")
    lint_cmd.add_argument("--symbols", nargs="*", default=[],
                          metavar="NAME=VALUE",
                          help="values for $symbols in the source")
    lint_cmd.add_argument("--hops", type=int, default=8,
                          help="hops of packet memory to preallocate")
    lint_cmd.add_argument("--max-instructions", type=int,
                          default=DEFAULT_MAX_INSTRUCTIONS,
                          help="per-switch instruction limit to verify "
                               "against")
    lint_cmd.add_argument("--max-hops", type=int, default=None,
                          help="hop budget to prove the program safe for "
                               "(default: the --hops preallocation)")
    lint_cmd.add_argument("--strict", action="store_true",
                          help="exit 1 on warnings too")
    lint_cmd.add_argument("--json", action="store_true",
                          help="machine-readable output")
    lint_cmd.set_defaults(func=cmd_lint)

    racecheck_cmd = commands.add_parser(
        "racecheck",
        help="fleet-level SRAM race analysis over several programs")
    racecheck_cmd.add_argument(
        "sources", nargs="+", metavar="FILE",
        help="program source files (or - for stdin), analysed as one "
             "concurrently-deployed same-task fleet")
    racecheck_cmd.add_argument("--symbols", nargs="*", default=[],
                               metavar="NAME=VALUE",
                               help="values for $symbols in the sources")
    racecheck_cmd.add_argument("--hops", type=int, default=8,
                               help="hops of packet memory to "
                                    "preallocate")
    racecheck_cmd.add_argument("--task", type=int, default=0,
                               help="task id the fleet runs as")
    racecheck_cmd.add_argument("--fence", action="append",
                               default=[], metavar="NAME=VALUE",
                               help="bind a stable register on the "
                                    "target switch (e.g. "
                                    "Switch:SwitchID=7); repeatable")
    racecheck_cmd.add_argument("--sram", action="append",
                               default=[], metavar="WORD=VALUE",
                               help="bind one word of the target "
                                    "switch's initial SRAM image "
                                    "(absolute index); repeatable")
    racecheck_cmd.add_argument("--switches", default=None,
                               metavar="FILE.json",
                               help="per-switch bindings file: analyse "
                                    "the fleet once per switch "
                                    "(cross-switch divergence)")
    racecheck_cmd.add_argument("--strict", action="store_true",
                               help="exit 1 on warnings/info too")
    racecheck_cmd.add_argument("--json", action="store_true",
                               help="machine-readable output")
    racecheck_cmd.set_defaults(func=cmd_racecheck)

    memmap_cmd = commands.add_parser(
        "memmap", help="print the unified memory map")
    memmap_cmd.add_argument("--json", action="store_true",
                            help="machine-readable output")
    memmap_cmd.set_defaults(func=cmd_memmap)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
