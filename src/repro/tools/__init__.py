"""Command-line tools.

- ``python -m repro.tools.tppasm`` — assemble/disassemble TPP programs
  and inspect the network-wide memory map.
- ``python -m repro.tools.run_experiment`` — run scaled-down versions of
  the paper's experiments from the shell.
"""
