"""Analysis utilities for the benchmark harness.

Time series, convergence metrics (how fast RCP* reaches fair share),
fairness indices, and plain-text table/plot rendering for the experiment
reports.
"""

from repro.analysis.timeseries import TimeSeries
from repro.analysis.convergence import (
    convergence_time_ns,
    jain_fairness,
    steady_state_mean,
)
from repro.analysis.reporting import (
    ascii_plot,
    fastpath_report,
    format_table,
    reliability_report,
)
from repro.analysis.sketch import (
    CountMinDecoder,
    DistinctCountDecoder,
    Estimate,
    HeavyHitter,
    HeavyHitterDecoder,
    image_from_mmu,
)

__all__ = [
    "TimeSeries",
    "convergence_time_ns",
    "jain_fairness",
    "steady_state_mean",
    "ascii_plot",
    "fastpath_report",
    "format_table",
    "reliability_report",
    "CountMinDecoder",
    "DistinctCountDecoder",
    "Estimate",
    "HeavyHitter",
    "HeavyHitterDecoder",
    "image_from_mmu",
]
