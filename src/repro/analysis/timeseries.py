"""A minimal time-series container tuned for simulation output."""

from __future__ import annotations

import bisect
from typing import List, Optional, Tuple


class TimeSeries:
    """Append-only (time_ns, value) samples with window queries.

    Times must be appended in non-decreasing order (simulation time only
    moves forward), which keeps every query a binary search.
    """

    def __init__(self, name: str = "") -> None:
        self.name = name
        self._times: List[int] = []
        self._values: List[float] = []

    def __len__(self) -> int:
        return len(self._times)

    def append(self, time_ns: int, value: float) -> None:
        """Add one sample (time must not go backwards)."""
        if self._times and time_ns < self._times[-1]:
            raise ValueError(
                f"time went backwards: {time_ns} < {self._times[-1]}")
        self._times.append(time_ns)
        self._values.append(float(value))

    def times(self) -> List[int]:
        """All sample times."""
        return list(self._times)

    def values(self) -> List[float]:
        """All sample values."""
        return list(self._values)

    def samples(self) -> List[Tuple[int, float]]:
        """All (time, value) pairs."""
        return list(zip(self._times, self._values))

    def window(self, start_ns: int, end_ns: int) -> "TimeSeries":
        """Samples with ``start_ns <= t < end_ns``."""
        lo = bisect.bisect_left(self._times, start_ns)
        hi = bisect.bisect_left(self._times, end_ns)
        result = TimeSeries(self.name)
        result._times = self._times[lo:hi]
        result._values = self._values[lo:hi]
        return result

    def mean(self) -> float:
        """Arithmetic mean of the values (0.0 when empty)."""
        if not self._values:
            return 0.0
        return sum(self._values) / len(self._values)

    def max(self) -> float:
        """Largest value (0.0 when empty)."""
        return max(self._values) if self._values else 0.0

    def min(self) -> float:
        """Smallest value (0.0 when empty)."""
        return min(self._values) if self._values else 0.0

    def last(self) -> Optional[float]:
        """Most recent value, or ``None`` when empty."""
        return self._values[-1] if self._values else None

    def value_at(self, time_ns: int) -> Optional[float]:
        """Most recent value at or before ``time_ns`` (zero-order hold)."""
        index = bisect.bisect_right(self._times, time_ns) - 1
        if index < 0:
            return None
        return self._values[index]

    def percentile(self, fraction: float) -> float:
        """Value at a quantile in [0, 1] (nearest-rank; 0.0 when empty).

        Latency reporting wants p50/p99; nearest-rank keeps the result an
        actually-observed value.
        """
        if not 0.0 <= fraction <= 1.0:
            raise ValueError(f"fraction must be in [0, 1]: {fraction}")
        if not self._values:
            return 0.0
        ordered = sorted(self._values)
        rank = min(len(ordered) - 1, int(fraction * len(ordered)))
        return ordered[rank]

    def ewma(self, alpha: float) -> "TimeSeries":
        """Exponentially smoothed copy."""
        if not 0.0 < alpha <= 1.0:
            raise ValueError(f"alpha must be in (0, 1], got {alpha}")
        result = TimeSeries(f"{self.name}.ewma")
        smoothed: Optional[float] = None
        for time_ns, value in zip(self._times, self._values):
            smoothed = value if smoothed is None else (
                smoothed + alpha * (value - smoothed))
            result.append(time_ns, smoothed)
        return result

    def resample_mean(self, bucket_ns: int) -> "TimeSeries":
        """Mean per fixed-width time bucket (bucket timestamped at its
        start); empty buckets are skipped."""
        if bucket_ns <= 0:
            raise ValueError(f"bucket must be positive: {bucket_ns}")
        result = TimeSeries(f"{self.name}.resampled")
        if not self._times:
            return result
        bucket_start = (self._times[0] // bucket_ns) * bucket_ns
        total = 0.0
        count = 0
        for time_ns, value in zip(self._times, self._values):
            if time_ns >= bucket_start + bucket_ns:
                if count:
                    result.append(bucket_start, total / count)
                # Jump straight to the sample's bucket (gaps between
                # samples may span millions of empty buckets).
                bucket_start = (time_ns // bucket_ns) * bucket_ns
                total, count = 0.0, 0
            total += value
            count += 1
        if count:
            result.append(bucket_start, total / count)
        return result
