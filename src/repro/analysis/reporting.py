"""Plain-text rendering of experiment results.

The benchmark harness prints the same rows/series the paper reports; these
helpers keep that output aligned and diff-friendly.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

from repro.analysis.timeseries import TimeSeries


def format_table(headers: Sequence[str],
                 rows: Sequence[Sequence[object]],
                 title: str = "") -> str:
    """Render a fixed-width table."""
    columns = [list(map(str, column))
               for column in zip(*([headers] + [list(r) for r in rows]))]
    widths = [max(len(cell) for cell in column) for column in columns]

    def render(cells: Sequence[object]) -> str:
        return " | ".join(str(cell).ljust(width)
                          for cell, width in zip(cells, widths))

    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append(render(headers))
    lines.append("-+-".join("-" * width for width in widths))
    for row in rows:
        lines.append(render(row))
    return "\n".join(lines)


def reliability_report(links: Iterable = (),
                       endpoints: Iterable = ()) -> str:
    """Loss/retry accounting for an impaired run, as aligned tables.

    ``links`` are :class:`repro.net.link.Link` objects (only impaired or
    lossy ones are worth passing); ``endpoints`` are
    :class:`repro.endhost.client.TPPEndpoint` instances.  Together they
    answer the first question a lossy experiment raises: where did the
    probes go, and what did the endpoints do about it?
    """
    sections: List[str] = []
    link_rows = [
        [link.name or "link", link.frames_delivered, link.frames_lost,
         link.frames_impaired_lost, link.frames_corrupted,
         link.frames_duplicated]
        for link in links
    ]
    if link_rows:
        sections.append(format_table(
            ["link", "delivered", "lost", "impair-lost", "corrupted",
             "duplicated"],
            link_rows, title="Link impairments"))
    endpoint_rows = [
        [ep.host.name, ep.probes_sent, ep.responses_received, ep.timeouts,
         ep.retries, ep.orphan_responses,
         ep.duplicate_responses + ep.late_responses, ep.pending_count,
         getattr(ep, "probes_rejected", 0)]
        for ep in endpoints
    ]
    if endpoint_rows:
        sections.append(format_table(
            ["endpoint", "sent", "responses", "timeouts", "retries",
             "orphans", "dup/late", "pending", "rejected"],
            endpoint_rows, title="Probe reliability"))
    if not sections:
        return "(nothing to report)"
    return "\n\n".join(sections)


def fastpath_report(switches: Iterable = ()) -> str:
    """Program-cache and accessor counters per switch, as one table.

    ``switches`` are :class:`repro.asic.switch.TPPSwitch` instances; the
    row answers "did the compile-once fast path actually stay warm?" —
    a healthy run shows hits ≫ misses and zero invalidations unless the
    control plane re-bound statistics mid-run.
    """
    rows = []
    for switch in switches:
        stats = switch.fastpath_stats()
        rows.append([
            switch.name,
            "on" if stats["compile_enabled"] else "off",
            stats["hits"], stats["misses"], stats["evictions"],
            stats["invalidations"], stats["size"],
            stats["accessor_resolutions"],
        ])
    if not rows:
        return "(nothing to report)"
    return format_table(
        ["switch", "fastpath", "hits", "misses", "evictions",
         "invalidated", "cached", "accessors"],
        rows, title="Execution fast path")


def batch_report(switches: Iterable = ()) -> str:
    """Batched-execution counters per switch, as one table.

    ``switches`` are :class:`repro.asic.switch.TPPSwitch` instances.
    Each row answers: how often the ingress drain found same-program
    runs, how many TPPs rode them, how many went through the vectorized
    lane versus the packet-at-a-time safe lane (and how many of the
    vectorized ones engaged a write-capable lane), the mean batch
    occupancy (TPPs per batch) — the amortization factor actually
    achieved, as opposed to the one hoped for — and *why* the demoted
    batches were demoted (``reason×count``, from
    :attr:`repro.core.tcpu.TCPU.batch_demotions`).
    """
    rows = []
    for switch in switches:
        stats = switch.fastpath_stats()
        occupancy = stats["batch_occupancy"]
        total = sum(size * count for size, count in occupancy.items())
        batches = sum(occupancy.values())
        mean = (total / batches) if batches else 0.0
        demotions = stats.get("batch_demotions", {})
        demoted = " ".join(
            f"{reason}×{count}"
            for reason, count in sorted(demotions.items())) or "-"
        rows.append([
            switch.name,
            "on" if stats["batch_enabled"] else "off",
            stats["batches_executed"], stats["batched_tpps"],
            stats["vector_batches"], stats["vector_tpps"],
            stats.get("vector_write_batches", 0),
            stats["batch_fallbacks"], f"{mean:.1f}", demoted,
        ])
    if not rows:
        return "(nothing to report)"
    return format_table(
        ["switch", "batching", "batches", "tpps", "vec-batches",
         "vec-tpps", "wr-batches", "fallbacks", "mean-occ", "demoted"],
        rows, title="Batched execution")


def fleet_report(result) -> str:
    """One-screen summary of a :class:`repro.fleet.driver.FleetResult`.

    The headline numbers an operator compares across shard counts: the
    determinism fingerprint (must not move), the admission amortization
    (verifier runs vs logical flows covered), and the modeled
    critical-path throughput the sharding bought.
    """
    counters = result.counters
    lines = [
        f"Sharded fleet: {result.n_regions} region(s) on "
        f"{result.shards} shard(s) [{result.transport}], "
        f"{result.rounds} round(s) of {result.quantum_ns} ns",
        f"  fingerprint     {result.fingerprint()}",
        f"  boundary msgs   {result.messages_exchanged}",
        f"  logical flows   {counters.get('logical_flows', 0)} "
        f"({counters.get('probes_sent', 0)} probes, "
        f"{counters.get('responses_received', 0)} echoes)",
        f"  admission       {counters.get('programs_verified', 0)} "
        f"verifier run(s) covered "
        f"{counters.get('flows_admitted', 0)} flow(s) "
        f"({counters.get('verifications_saved', 0)} saved); "
        f"{counters.get('certificates_installed', 0)} certificate(s)",
        f"  switching       {counters.get('packets_switched', 0)} packets, "
        f"{counters.get('tpps_executed', 0)} TPP executions",
        f"  modeled time    {result.modeled_seconds * 1e3:.2f} ms "
        f"({result.packets_per_modeled_second:,.0f} packets/s, "
        f"{result.flows_per_modeled_second:,.0f} flows/s)",
        f"  wall time       {result.wall_seconds * 1e3:.2f} ms",
    ]
    return "\n".join(lines)


def race_report(switches: Iterable = (),
                policies: Iterable = ()) -> str:
    """Fleet race-table counters per switch / policy, as aligned tables.

    ``switches`` are :class:`repro.asic.switch.TPPSwitch` instances
    (their TCPU's certificate fleet); ``policies`` are
    :class:`repro.control.security.VerifierPolicy` instances (the edge
    admission fleet).  Each row answers: how many programs share SRAM,
    how much incremental work the race table did, and whether anything
    racy got in (or was turned away).
    """
    sections: List[str] = []
    switch_rows = []
    for switch in switches:
        tcpu = switch.tcpu
        report = tcpu.fleet.report()
        switch_rows.append([
            switch.name, tcpu.race_mode, len(tcpu.fleet),
            report.pairs_checked, tcpu.fleet.pair_checks,
            len(report.errors), len(report.warnings),
            len(tcpu.race_conflicts), tcpu.certificates_refused,
            tcpu.certificates_swept,
        ])
    if switch_rows:
        sections.append(format_table(
            ["switch", "mode", "fleet", "pairs", "incr-checks",
             "errors", "warnings", "conflicts", "refused", "swept"],
            switch_rows, title="Certificate race table (TCPU)"))
    policy_rows = []
    for index, policy in enumerate(policies):
        report = policy.fleet.report()
        policy_rows.append([
            f"policy{index}", policy.race_mode, len(policy.fleet),
            report.pairs_checked, policy.fleet.pair_checks,
            len(report.errors), len(report.warnings),
            policy.tpps_racy, policy.tpps_rejected,
        ])
    if policy_rows:
        sections.append(format_table(
            ["policy", "mode", "fleet", "pairs", "incr-checks",
             "errors", "warnings", "racy", "rejected"],
            policy_rows, title="Admission race table (VerifierPolicy)"))
    if not sections:
        return "(nothing to report)"
    return "\n\n".join(sections)


def ascii_plot(series: TimeSeries, width: int = 72, height: int = 16,
               title: str = "", y_min: Optional[float] = None,
               y_max: Optional[float] = None) -> str:
    """A quick terminal plot of a time series (for benches and examples)."""
    samples = series.samples()
    if not samples:
        return f"{title} (no data)"
    times = [t for t, _ in samples]
    values = [v for _, v in samples]
    lo = min(values) if y_min is None else y_min
    hi = max(values) if y_max is None else y_max
    if hi <= lo:
        hi = lo + 1.0
    t0, t1 = times[0], times[-1]
    span = max(1, t1 - t0)

    grid = [[" "] * width for _ in range(height)]
    for time_ns, value in samples:
        x = min(width - 1, int((time_ns - t0) / span * (width - 1)))
        clipped = min(hi, max(lo, value))
        y = min(height - 1, int((clipped - lo) / (hi - lo) * (height - 1)))
        grid[height - 1 - y][x] = "*"

    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append(f"{hi:>10.3g} +" + "-" * width)
    for row in grid:
        lines.append(" " * 11 + "|" + "".join(row))
    lines.append(f"{lo:>10.3g} +" + "-" * width)
    lines.append(" " * 12 + f"t = {t0 / 1e9:.3g}s ... {t1 / 1e9:.3g}s")
    return "\n".join(lines)
