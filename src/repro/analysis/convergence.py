"""Convergence and fairness metrics for the congestion-control benches."""

from __future__ import annotations

from typing import Optional, Sequence

from repro.analysis.timeseries import TimeSeries


def convergence_time_ns(series: TimeSeries, target: float,
                        tolerance: float = 0.1,
                        from_time_ns: int = 0) -> Optional[int]:
    """First time the series enters and *stays* within ±tolerance·target.

    Returns ``None`` if the series never settles.  This is the metric used
    to compare RCP and RCP* convergence after each flow arrival (Figure 2).
    """
    if target == 0:
        raise ValueError("target must be nonzero")
    band = abs(tolerance * target)
    entered: Optional[int] = None
    for time_ns, value in series.samples():
        if time_ns < from_time_ns:
            continue
        if abs(value - target) <= band:
            if entered is None:
                entered = time_ns
        else:
            entered = None
    return entered


def steady_state_mean(series: TimeSeries, start_ns: int,
                      end_ns: int) -> float:
    """Mean value over a window presumed to be steady state."""
    return series.window(start_ns, end_ns).mean()


def jain_fairness(allocations: Sequence[float]) -> float:
    """Jain's fairness index: 1.0 means perfectly equal shares."""
    if not allocations:
        return 0.0
    # The index is scale-invariant; normalizing by the peak magnitude
    # keeps tiny shares out of the subnormal range, where the squared
    # terms lose enough precision to push the ratio past 1.
    scale = max(abs(value) for value in allocations)
    if scale == 0:
        return 0.0
    scaled = [value / scale for value in allocations]
    total = sum(scaled)
    squares = sum(value * value for value in scaled)
    if squares == 0:
        return 0.0
    return (total * total) / (len(allocations) * squares)


def overshoot_fraction(series: TimeSeries, target: float,
                       from_time_ns: int = 0) -> float:
    """Worst relative excursion above the target after ``from_time_ns``."""
    worst = 0.0
    for time_ns, value in series.samples():
        if time_ns < from_time_ns:
            continue
        if target > 0:
            worst = max(worst, (value - target) / target)
    return worst
