"""End-host decoders for sketch SRAM snapshots.

A decoder consumes an *image* — a ``word -> value`` mapping produced
either by probe TPPs (:func:`repro.telemetry.programs.read_sketch`, the
data-plane path) or by the control-plane shortcut
:func:`image_from_mmu` — and turns it into estimates with explicit
error bounds:

- :class:`CountMinDecoder` — point frequencies; overestimate-only,
  ``estimate - truth <= ε·N`` with probability ``>= 1 - δ``;
- :class:`HeavyHitterDecoder` — candidate keys recovered from the
  CSTORE claim slots, ranked by their count-min estimates;
- :class:`DistinctCountDecoder` — HLL cardinality with relative
  standard error ``~1.04/sqrt(m)`` (linear counting in the small
  range, the standard correction).

Decoders share the layout descriptor (and therefore the hash seeds)
with the program generators, so reader and writer agree bit-for-bit on
every cell address.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Tuple

from repro.telemetry.layout import (
    CountMinLayout,
    DistinctCountLayout,
    HeavyHitterLayout,
)

Image = Mapping[int, int]


def image_from_mmu(mmu, words: Iterable[int]) -> Dict[int, int]:
    """Control-plane snapshot of ``words`` via ``peek_sram`` (no TPPs).

    Handy in tests and offline analysis; the deployed read path sends
    probe TPPs instead (:func:`repro.telemetry.programs.read_sketch`).
    """
    return {word: mmu.peek_sram(word) for word in words}


@dataclass(frozen=True)
class Estimate:
    """One point-frequency answer with its accuracy contract."""

    key: int
    estimate: int
    error_bound: float    # additive: truth in [est - bound, est]
    confidence: float     # P(estimate - truth <= error_bound) >= this


class CountMinDecoder:
    """Point-frequency queries against a count-min image."""

    def __init__(self, layout: CountMinLayout) -> None:
        self.layout = layout

    def row_sum(self, image: Image, row: int = 0) -> int:
        """Total stream count ``N`` (every update adds ``delta`` to
        exactly one cell per row, so any single row sums to ``N``)."""
        lo = self.layout.cell_word(row, 0)
        return sum(image.get(w, 0) for w in range(lo, lo + self.layout.width))

    def raw_estimate(self, image: Image, key: int) -> int:
        """``min`` over the key's row counters — the CM-sketch query."""
        return min(image.get(w, 0) for w in self.layout.words_for(key))

    def estimate(self, image: Image, key: int) -> Estimate:
        total = self.row_sum(image)
        return Estimate(key=key,
                        estimate=self.raw_estimate(image, key),
                        error_bound=self.layout.error_bound(total),
                        confidence=1.0 - self.layout.delta)


@dataclass(frozen=True)
class HeavyHitter:
    """A candidate flow recovered from the claim table."""

    key: int
    estimate: int
    error_bound: float
    confidence: float


class HeavyHitterDecoder:
    """Candidate recovery + ranking for a heavy-hitter image."""

    def __init__(self, layout: HeavyHitterLayout) -> None:
        self.layout = layout
        self._countmin = CountMinDecoder(layout.countmin)

    def candidates(self, image: Image) -> Tuple[int, ...]:
        """Keys found in claimed slots (slot order, sentinel skipped)."""
        return tuple(image[w] for w in self.layout.slot_words()
                     if image.get(w, self.layout.unclaimed_value)
                     != self.layout.unclaimed_value)

    def report(self, image: Image, k: int = 0) -> List[HeavyHitter]:
        """Top candidates by estimated count (all of them if ``k<=0``).

        The claim table bounds recall: a flow whose slot was claimed
        first by a rival key is invisible (at most ``n_slots`` flows
        are ever reported), while precision is count-min's — every
        reported count overestimates by at most ``ε·N``.
        """
        total = self._countmin.row_sum(image)
        bound = self.layout.countmin.error_bound(total)
        confidence = 1.0 - self.layout.delta
        hitters = [HeavyHitter(key=key,
                               estimate=self._countmin.raw_estimate(
                                   image, key),
                               error_bound=bound,
                               confidence=confidence)
                   for key in self.candidates(image)]
        hitters.sort(key=lambda h: (-h.estimate, h.key))
        return hitters[:k] if k > 0 else hitters


def _hll_alpha(m: int) -> float:
    if m == 16:
        return 0.673
    if m == 32:
        return 0.697
    if m == 64:
        return 0.709
    return 0.7213 / (1.0 + 1.079 / m)


class DistinctCountDecoder:
    """HLL cardinality estimation from a register-file image."""

    def __init__(self, layout: DistinctCountLayout) -> None:
        self.layout = layout

    def registers(self, image: Image) -> Tuple[int, ...]:
        return tuple(image.get(w, 0) for w in self.layout.words())

    def estimate(self, image: Image) -> float:
        """Harmonic-mean estimator with small-range linear counting."""
        regs = self.registers(image)
        m = self.layout.m
        raw = _hll_alpha(m) * m * m / sum(2.0 ** -r for r in regs)
        zeros = regs.count(0)
        if raw <= 2.5 * m and zeros > 0:
            return m * math.log(m / zeros)
        return raw

    def relative_error(self) -> float:
        """The estimator's relative standard error (one sigma)."""
        return self.layout.standard_error
