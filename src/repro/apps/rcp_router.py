"""In-network RCP: the Figure 2 baseline.

This is the reproduction of "the original RCP algorithm available in ns2
simulation": every link runs an :class:`RCPLinkAgent` *inside the switch*
that periodically re-evaluates the control equation from locally measured
offered load and queue occupancy, and every data packet carries an
:class:`~repro.apps.rcp_common.RCPHeader` that routers stamp down to their
link's fair share.  Deploying this for real would require a new ASIC — it
is exactly the feature TPPs let end-hosts build instead (RCP*, in
:mod:`repro.apps.rcp`).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.analysis.timeseries import TimeSeries
from repro.apps.rcp_common import (
    DEFAULT_ALPHA,
    DEFAULT_BETA,
    RCPHeader,
    rcp_rate_update,
)
from repro.asic.switch import TPPSwitch
from repro.endhost.flows import Flow, FlowSink
from repro.net.host import Host
from repro.net.packet import Datagram, EthernetFrame, ETHERTYPE_IPV4
from repro.net.port import Port
from repro.sim.timers import PeriodicTimer

DEFAULT_UPDATE_INTERVAL_NS = 10_000_000  # T = 10 ms
#: How many occupancy samples the agent averages per control interval.
QUEUE_SAMPLES_PER_INTERVAL = 10


class RCPLinkAgent:
    """Per-link RCP state machine running inside a switch.

    Measures y(t) (bytes admitted to + dropped at the egress queue per
    interval) and q(t) (time-averaged occupancy), and re-evaluates R(t)
    every ``interval_ns``.
    """

    def __init__(self, switch: TPPSwitch, port: Port, rtt_s: float,
                 interval_ns: int = DEFAULT_UPDATE_INTERVAL_NS,
                 alpha: float = DEFAULT_ALPHA,
                 beta: float = DEFAULT_BETA) -> None:
        self.switch = switch
        self.port = port
        self.capacity_bps = float(port.rate_bps)
        self.rtt_s = rtt_s
        self.interval_ns = interval_ns
        self.alpha = alpha
        self.beta = beta
        # Footnote 3: the fair-share rate starts at the link capacity.
        self.rate_bps = self.capacity_bps
        self.rate_series = TimeSeries(f"{switch.name}.p{port.index}.R")
        self._offered_base = self._offered_bytes()
        self._queue_accumulator = 0
        self._queue_samples = 0
        self._sampler = PeriodicTimer(
            switch.sim, max(1, interval_ns // QUEUE_SAMPLES_PER_INTERVAL),
            self._sample_queue)
        self._updater = PeriodicTimer(switch.sim, interval_ns, self._update)

    def start(self) -> None:
        """Begin measuring and updating."""
        self.rate_series.append(self.switch.sim.now_ns, self.rate_bps)
        self._sampler.start()
        self._updater.start()

    def stop(self) -> None:
        """Freeze the agent."""
        self._sampler.stop()
        self._updater.stop()

    def stamp(self, header: RCPHeader) -> None:
        """Lower the packet's advertised rate to this link's fair share."""
        if self.rate_bps < header.rate_bps:
            header.rate_bps = self.rate_bps

    def _offered_bytes(self) -> int:
        stats = self.port.queue.stats
        return stats.bytes_enqueued + stats.bytes_dropped

    def _sample_queue(self) -> None:
        self._queue_accumulator += self.port.queue.backlog_bytes
        self._queue_samples += 1

    def _update(self) -> None:
        offered = self._offered_bytes()
        interval_s = self.interval_ns / 1e9
        offered_bps = (offered - self._offered_base) * 8 / interval_s
        self._offered_base = offered
        if self._queue_samples:
            queue_bits = self._queue_accumulator / self._queue_samples * 8
        else:
            queue_bits = self.port.queue.backlog_bytes * 8
        self._queue_accumulator = 0
        self._queue_samples = 0
        self.rate_bps = rcp_rate_update(
            self.rate_bps, self.capacity_bps, offered_bps, queue_bits,
            interval_s, self.rtt_s, self.alpha, self.beta)
        self.rate_series.append(self.switch.sim.now_ns, self.rate_bps)


class RCPRouterNetwork:
    """Installs RCP agents on switch ports and the stamping dataplane hook."""

    def __init__(self, switches: List[TPPSwitch], rtt_s: float,
                 interval_ns: int = DEFAULT_UPDATE_INTERVAL_NS,
                 alpha: float = DEFAULT_ALPHA,
                 beta: float = DEFAULT_BETA) -> None:
        self.agents: Dict[Tuple[str, int], RCPLinkAgent] = {}
        for switch in switches:
            for port in switch.ports:
                agent = RCPLinkAgent(switch, port, rtt_s, interval_ns,
                                     alpha, beta)
                self.agents[(switch.name, port.index)] = agent
            switch.datagram_hooks.append(self._make_hook(switch))

    def _make_hook(self, switch: TPPSwitch):
        def hook(frame, datagram, metadata, egress_port) -> None:
            header = datagram.congestion_header
            if isinstance(header, RCPHeader):
                agent = self.agents.get((switch.name, egress_port.index))
                if agent is not None:
                    agent.stamp(header)
        return hook

    def agent(self, switch_name: str, port_index: int) -> RCPLinkAgent:
        """The agent for one link."""
        return self.agents[(switch_name, port_index)]

    def start(self) -> None:
        """Start every agent."""
        for agent in self.agents.values():
            agent.start()

    def stop(self) -> None:
        """Stop every agent."""
        for agent in self.agents.values():
            agent.stop()


FEEDBACK_PORT_BASE = 50000


class RCPBaselineFlow:
    """Sender + receiver endpoints for the in-network baseline.

    The sender paces at the last rate fed back by the receiver; every data
    packet carries an RCP shim initialized to the link capacity (i.e.
    "as much as you'll give me") which routers stamp down; the receiver
    echoes the stamped value in a small feedback datagram.
    """

    def __init__(self, index: int, src: Host, dst: Host, dst_mac: int,
                 src_mac: int, capacity_bps: float, rtt_ns: int,
                 packet_bytes: int = 1000,
                 initial_rate_bps: Optional[int] = None) -> None:
        self.index = index
        self.src = src
        self.dst = dst
        self.src_mac = src_mac
        self.capacity_bps = capacity_bps
        self.rtt_ns = rtt_ns
        data_port = 41000 + index
        feedback_port = FEEDBACK_PORT_BASE + index
        self._feedback_port = feedback_port
        if initial_rate_bps is None:
            initial_rate_bps = max(1, int(capacity_bps * 0.05))
        self.flow = Flow(src, dst, dst_mac, data_port,
                         rate_bps=initial_rate_bps,
                         packet_bytes=packet_bytes,
                         frame_factory=self._make_frame)
        self.sink = FlowSink(dst, data_port)
        self.rate_feedback = TimeSeries(f"rcp-flow{index}.rate")
        dst.on_udp_port(feedback_port, self._on_data_feedback_request)
        src.on_udp_port(feedback_port, self._on_feedback)

    # -- sender side --------------------------------------------------- #

    def _make_frame(self, flow: Flow, packet_bytes: int) -> EthernetFrame:
        header = RCPHeader(rate_bps=self.capacity_bps, rtt_ns=self.rtt_ns)
        datagram = flow.make_datagram(packet_bytes,
                                      shim_bytes=header.size_bytes)
        datagram.congestion_header = header
        return EthernetFrame(dst=flow.dst_mac, src=flow.src.mac,
                             ethertype=ETHERTYPE_IPV4, payload=datagram)

    def _on_feedback(self, datagram: Datagram, frame: EthernetFrame) -> None:
        header = datagram.congestion_header
        if not isinstance(header, RCPHeader):
            return
        self.flow.set_rate(int(header.rate_bps))
        self.rate_feedback.append(self.src.sim.now_ns, header.rate_bps)

    # -- receiver side -------------------------------------------------- #

    def attach_receiver(self) -> None:
        """Route the flow's data packets through the feedback generator."""
        self.dst.on_udp_port(self.flow.udp_port, self._on_data)

    def _on_data(self, datagram: Datagram, frame: EthernetFrame) -> None:
        self.sink._on_datagram(datagram, frame)
        header = datagram.congestion_header
        if not isinstance(header, RCPHeader):
            return
        feedback = Datagram(src_ip=self.dst.ip, dst_ip=self.src.ip,
                            src_port=self._feedback_port,
                            dst_port=self._feedback_port,
                            payload=None,
                            congestion_header=RCPHeader(
                                rate_bps=header.rate_bps,
                                rtt_ns=header.rtt_ns))
        self.dst.send_datagram(self.src_mac, feedback)

    def _on_data_feedback_request(self, datagram, frame) -> None:
        # Placeholder handler so stray feedback datagrams at the receiver
        # side are not counted as undelivered.
        return

    def start(self) -> None:
        """Register the receiver and start pacing."""
        self.attach_receiver()
        self.flow.start()

    def stop(self) -> None:
        self.flow.stop()
