"""Traffic accounting on switch SRAM — the consistency-critical task.

§2.2 singles accounting out as the kind of network task where write races
*do* matter ("while this is a legitimate concern for network tasks such
as accounting...").  This module implements a cooperative accounting
scheme on the TPP substrate:

- the control-plane agent gives every registered sender one SRAM word on
  the switch being audited (its *ledger slot*);
- each sender periodically publishes its cumulative transmitted bytes
  into its own slot with a plain ``STORE`` TPP — single-writer slots, so
  no synchronization is needed (the design dodge that makes racy
  hardware safe);
- an auditor probes all slots plus the audited port's own
  ``Link:BytesTransmitted`` counter and reconciles: bytes the switch
  forwarded but nobody claimed are *unattributed* — a misbehaving or
  unregistered sender.

The audit is approximate by nature (publication lag), which is exactly
the paper's point: periodic end-host writes give accounting at RTT
granularity without any per-packet ASIC counters beyond what exists.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.control.agent import ControlPlaneAgent
from repro.core.assembler import assemble
from repro.core.memory_map import SRAM_BASE
from repro.endhost.client import TPPEndpoint, TPPResultView
from repro.endhost.flows import Flow
from repro.net.host import Host
from repro.sim.timers import PeriodicTimer

PUBLISH_PROGRAM = """
.memory 1
.data 0 $TxBytes
CEXEC [Switch:SwitchID], 0xFFFFFFFF, $AuditedSwitch
STORE [{slot}], [Packet:0]
"""

AUDIT_PROGRAM_HEADER = ".mode absolute\n"


@dataclass
class AuditReport:
    """One reconciliation pass."""

    time_ns: int
    forwarded_bytes: int
    attributed_bytes: int

    @property
    def unattributed_bytes(self) -> int:
        return max(0, self.forwarded_bytes - self.attributed_bytes)

    @property
    def attribution_fraction(self) -> float:
        if self.forwarded_bytes == 0:
            return 1.0
        return min(1.0, self.attributed_bytes / self.forwarded_bytes)


class TrafficLedger:
    """Network-wide setup: slots on the audited switch."""

    def __init__(self, agent: ControlPlaneAgent, audited_switch,
                 task_name: str = "accounting") -> None:
        self.agent = agent
        self.audited_switch = audited_switch
        self.task = agent.create_task(task_name)
        self.task_name = task_name
        self._slots: Dict[str, int] = {}  # publisher name -> sram word

    def register_sender(self, name: str) -> int:
        """Allocate a ledger slot; returns its virtual address."""
        vaddr = self.agent.allocate_sram(self.task_name, f"slot-{name}")
        self._slots[name] = vaddr - SRAM_BASE
        return vaddr

    def slot_vaddr(self, name: str) -> int:
        return SRAM_BASE + self._slots[name]

    def slot_names(self) -> List[str]:
        return list(self._slots)


class LedgerPublisher:
    """Sender side: periodically STOREs cumulative tx bytes to its slot."""

    def __init__(self, ledger: TrafficLedger, name: str, host: Host,
                 dst_mac: int, tx_bytes_fn: Callable[[], int],
                 interval_ns: int = 10_000_000) -> None:
        self.ledger = ledger
        self.host = host
        self.dst_mac = dst_mac
        self.tx_bytes_fn = tx_bytes_fn
        endpoint = getattr(host, "tpp", None)
        if endpoint is None:
            endpoint = TPPEndpoint(host)
            host.tpp = endpoint
        self.endpoint = endpoint
        self._slot_vaddr = ledger.register_sender(name)
        self._timer = PeriodicTimer(host.sim, interval_ns, self._publish)
        self.publishes = 0

    def start(self) -> None:
        """Begin publishing."""
        self._timer.start(first_delay_ns=1)

    def stop(self) -> None:
        """Stop publishing (the last published value persists)."""
        self._timer.stop()

    def _publish(self) -> None:
        source = PUBLISH_PROGRAM.format(slot=f"0x{self._slot_vaddr:04X}")
        program = assemble(
            source, memory_map=self.ledger.agent.memory_map,
            symbols={
                "TxBytes": self.tx_bytes_fn() & 0xFFFF_FFFF,
                "AuditedSwitch": self.ledger.audited_switch.switch_id,
            })
        self.publishes += 1
        self.endpoint.send(program, dst_mac=self.dst_mac,
                           task_id=self.ledger.task.task_id)


class LedgerAuditor:
    """Auditor side: reconciles claimed bytes against the port counter."""

    def __init__(self, ledger: TrafficLedger, host: Host, dst_mac: int,
                 audited_port_index: int,
                 interval_ns: int = 50_000_000) -> None:
        self.ledger = ledger
        self.host = host
        self.dst_mac = dst_mac
        self.audited_port_index = audited_port_index
        endpoint = getattr(host, "tpp", None)
        if endpoint is None:
            endpoint = TPPEndpoint(host)
            host.tpp = endpoint
        self.endpoint = endpoint
        self.reports: List[AuditReport] = []
        self._timer = PeriodicTimer(host.sim, interval_ns, self._audit)
        self._baseline_forwarded: Optional[int] = None

    def start(self) -> None:
        """Begin periodic audits."""
        self._timer.start()

    def stop(self) -> None:
        """Stop auditing."""
        self._timer.stop()

    def _audit(self) -> None:
        # One probe reads every slot plus the forwarded-bytes counter.
        # The whole program is CEXEC-gated to the audited switch (the
        # slots on other switches were never written), and the probe's
        # path must egress the audited port there so the Link counter
        # resolves against it.  The 5-instruction budget caps one audit
        # probe at 3 slots; larger ledgers scatter over several probes
        # exactly like repro.apps.pathprobe.SwitchInventory.
        names = self.ledger.slot_names()
        lines = [AUDIT_PROGRAM_HEADER]
        lines.append(f".memory {len(names) + 1}")
        lines.append("CEXEC [Switch:SwitchID], 0xFFFFFFFF, $AuditedSwitch")
        for index, name in enumerate(names):
            vaddr = self.ledger.slot_vaddr(name)
            lines.append(f"LOAD [0x{vaddr:04X}], [Packet:{index}]")
        lines.append(f"LOAD [Link:BytesTransmitted], "
                     f"[Packet:{len(names)}]")
        program = assemble(
            "\n".join(lines), memory_map=self.ledger.agent.memory_map,
            symbols={"AuditedSwitch":
                     self.ledger.audited_switch.switch_id})
        self.endpoint.send(program, dst_mac=self.dst_mac,
                           task_id=self.ledger.task.task_id,
                           on_response=self._on_result)

    def _on_result(self, result: TPPResultView) -> None:
        names = self.ledger.slot_names()
        attributed = sum(result.word(index)
                         for index in range(len(names)))
        forwarded = result.word(len(names))
        if self._baseline_forwarded is None:
            # Ignore traffic from before the ledger existed.
            self._baseline_forwarded = forwarded - attributed
        self.reports.append(AuditReport(
            time_ns=result.time_ns,
            forwarded_bytes=forwarded - self._baseline_forwarded,
            attributed_bytes=attributed))


def attach_flow_publisher(ledger: TrafficLedger, name: str, flow: Flow,
                          dst_mac: int,
                          interval_ns: int = 10_000_000) -> LedgerPublisher:
    """Publisher for a Flow: claims the flow's cumulative sent bytes."""
    return LedgerPublisher(ledger, name, flow.src, dst_mac,
                           tx_bytes_fn=lambda: flow.bytes_sent,
                           interval_ns=interval_ns)
