r"""Shared pieces of both RCP implementations.

The Rate Control Protocol maintains one fair-share rate R(t) per link,
updated every T seconds by the control equation of §2.2::

                    /      T   alpha (y(t) - C) + beta q(t)/d \
    R(t + T) = R(t) | 1 - ---  ------------------------------ |
                    \      d                C                 /

where y(t) is average offered load into the link, q(t) the average queue
(in bits here, so q/d is a rate), d the average round-trip time of the
flows on the link, and alpha/beta configurable gains (the paper uses
alpha = 0.5, beta = 1 in Figure 2).

:func:`rcp_rate_update` evaluates one step of that equation and is shared
verbatim by the in-network baseline (:mod:`repro.apps.rcp_router`) and the
end-host RCP* (:mod:`repro.apps.rcp`) — the point of the reproduction is
that only *where* it runs differs.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Figure 2's parameters.
DEFAULT_ALPHA = 0.5
DEFAULT_BETA = 1.0

#: Rates are clamped into [MIN_RATE_FRACTION * C, C].
MIN_RATE_FRACTION = 0.01


@dataclass
class RCPHeader:
    """The congestion shim header RCP adds between IP and transport.

    Used only by the in-network baseline: data packets advertise the
    sender's current ``rate_bps`` and ``rtt_ns``; each router lowers
    ``rate_bps`` to its link's fair share if that is smaller; the receiver
    feeds the surviving value back to the sender.
    """

    rate_bps: float
    rtt_ns: int
    size_bytes: int = 12  # 8 B rate + 4 B RTT, as a real shim would carry


def rcp_rate_update(rate_bps: float, capacity_bps: float,
                    offered_bps: float, queue_bits: float,
                    interval_s: float, rtt_s: float,
                    alpha: float = DEFAULT_ALPHA,
                    beta: float = DEFAULT_BETA) -> float:
    """One step of the RCP control equation, clamped to [1% C, C]."""
    if capacity_bps <= 0:
        raise ValueError(f"capacity must be positive: {capacity_bps}")
    if rtt_s <= 0:
        raise ValueError(f"rtt must be positive: {rtt_s}")
    pressure = (alpha * (offered_bps - capacity_bps)
                + beta * queue_bits / rtt_s)
    factor = 1.0 - (interval_s / rtt_s) * pressure / capacity_bps
    new_rate = rate_bps * factor
    return min(capacity_bps,
               max(MIN_RATE_FRACTION * capacity_bps, new_rate))
