"""RCP* — the end-host Rate Control Protocol of §2.2.

The refactoring the paper demonstrates: the ASIC only supports reads and
writes; the whole control algorithm runs at end-hosts, in three phases per
flow:

**Phase 1 — Collect.**  A stack-addressed probe TPP gathers, per hop::

    PUSH [Switch:SwitchID]
    PUSH [Link:QueueSize]
    PUSH [Link:RX-Utilization]
    PUSH [Link:RCP-RateRegister]
    PUSH [Link:RCP-LastUpdate]

The receiver echoes the fully executed TPP back to the sender.  The
``RCP-RateRegister`` / ``RCP-LastUpdate`` mnemonics name per-port scratch
registers allocated network-wide by the control-plane agent, which also
initializes every rate register to the link capacity (footnote 3).

**Phase 2 — Compute.**  The flow's rate controller smooths its per-link
queue and utilization samples and, for the bottleneck link (the one with
the minimum fair-share register), evaluates the RCP control equation with
T = the *actual* time since the register was last updated.

**Phase 3 — Update.**  A TPP that executes only on the bottleneck switch
(CEXEC on the switch id, exactly the paper's listing) writes the new rate.
Because many flows share the register, the update is made race-free with
the CSTORE/CEXEC combination the paper's instruction set enables::

    CEXEC  [Switch:SwitchID], 0xFFFFFFFF, $switch    ; bottleneck only
    CSTORE [Link:RCP-LastUpdate], $seen_ts, $now_ts  ; atomic claim
    CEXEC  [Link:RCP-LastUpdate], 0xFFFFFFFF, $now_ts ; did we win?
    STORE  [Link:RCP-RateRegister], [Packet:0]       ; commit new rate

A flow that lost the CSTORE race (another flow updated the link since this
flow's last collect) simply does nothing — it will pick up the fresh value
on its next probe.  Congestion control "does not require such strong
notions of consistency" (§2.2), but the linearizable update costs nothing
and keeps the aggregate update rate at ~1/T regardless of flow count.

Between updates, every flow paces its traffic at the minimum fair-share
rate across its path — the rate-limiter half of the implementation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional

from repro.analysis.timeseries import TimeSeries
from repro.apps.rcp_common import (
    DEFAULT_ALPHA,
    DEFAULT_BETA,
    rcp_rate_update,
)
from repro.control.agent import ControlPlaneAgent
from repro.core.assembler import assemble
from repro.endhost.client import (
    DEFAULT_RTT_MULTIPLIER,
    RetryPolicy,
    TPPEndpoint,
    TPPResultView,
)
from repro.endhost.flows import Flow, FlowSink
from repro.endhost.probes import PeriodicProber
from repro.net.host import Host
from repro.net.packet import ETHERTYPE_IPV4, ETHERTYPE_TPP, EthernetFrame
from repro.sim.timers import PeriodicTimer

COLLECT_PROGRAM = """
PUSH [Switch:SwitchID]
PUSH [Link:QueueSize]
PUSH [Link:RX-Utilization]
PUSH [Link:RCP-RateRegister]
PUSH [Link:RCP-LastUpdate]
"""

UPDATE_PROGRAM = """
.memory 1
.data 0 $NewRate
CEXEC [Switch:SwitchID], 0xFFFFFFFF, $BottleneckSwitchID
CSTORE [Link:RCP-LastUpdate], $SeenTimestamp, $NowTimestamp
CEXEC [Link:RCP-LastUpdate], 0xFFFFFFFF, $NowTimestamp
STORE [Link:RCP-RateRegister], [Packet:0]
"""

#: Rate registers hold kb/s so 10 Gb/s links fit comfortably in a 32-bit
#: word; timestamps are microseconds (wraps after ~71 min of simulation).
RATE_UNIT_BPS = 1000
TIMESTAMP_UNIT_NS = 1000

DEFAULT_PROBE_INTERVAL_NS = 5_000_000   # 5 ms
DEFAULT_UPDATE_INTERVAL_NS = 10_000_000  # T = 10 ms
DEFAULT_SAMPLE_EWMA_ALPHA = 0.3
#: Hops of packet memory preallocated in the collect probe.  Probes are
#: real traffic on the bottleneck, so the preallocation should match the
#: expected path length ("the maximum number of hops is small within a
#: datacenter", §2.1) rather than default to the assembler's worst case.
DEFAULT_MAX_HOPS = 6
#: Collect probes unanswered after this many probe intervals count as
#: lost; the control loop then holds (one miss) or decays (a run of
#: misses) its rate instead of stalling on stale samples.
COLLECT_TIMEOUT_INTERVALS = 3
#: Multiplicative rate decay per consecutive missed collect beyond the
#: first, and the floor it stops at (a fraction of link capacity).
MISS_DECAY = 0.7
MISS_RATE_FLOOR_FRACTION = 0.01


@dataclass
class LinkSample:
    """Smoothed per-link state a flow maintains from its probes.

    Smoothing is *time-constant* based, not per-sample: the weight of a
    new sample is ``1 - exp(-dt / tau)`` for the elapsed time since the
    previous one.  This keeps the control loop's effective bandwidth
    independent of the probing cadence — essential for piggybacked
    probes, whose rate rises and falls with the flow's own rate.
    """

    switch_id: int
    queue_bytes_avg: float = 0.0
    utilization_avg: float = 0.0
    rate_register_bps: float = 0.0
    last_update_ts: int = 0
    samples: int = 0
    last_sample_ns: int = 0

    def fold(self, queue_bytes: int, utilization: float,
             rate_register_bps: float, last_update_ts: int,
             now_ns: int, tau_ns: float) -> None:
        if self.samples == 0:
            self.queue_bytes_avg = float(queue_bytes)
            self.utilization_avg = utilization
        else:
            dt = max(1, now_ns - self.last_sample_ns)
            weight = 1.0 - math.exp(-dt / tau_ns)
            self.queue_bytes_avg += weight * (queue_bytes
                                              - self.queue_bytes_avg)
            self.utilization_avg += weight * (utilization
                                              - self.utilization_avg)
        self.rate_register_bps = rate_register_bps
        self.last_update_ts = last_update_ts
        self.last_sample_ns = now_ns
        self.samples += 1


class RCPStarTask:
    """Network-wide setup for RCP*: one per experiment.

    Creates the task with the control-plane agent, allocates the two
    per-port scratch registers, registers their mnemonics in the shared
    memory map, and initializes every rate register to its link's capacity.
    """

    def __init__(self, agent: ControlPlaneAgent) -> None:
        self.agent = agent
        self.memory_map = agent.memory_map
        allocation = agent.create_task("rcp")
        self.task_id = allocation.task_id
        self.rate_vaddr = agent.allocate_link_register(
            "rcp", "rate", mnemonic="Link:RCP-RateRegister")
        self.ts_vaddr = agent.allocate_link_register(
            "rcp", "last_update", mnemonic="Link:RCP-LastUpdate")
        agent.initialize_link_register(
            self.rate_vaddr,
            lambda switch, port_index:
                switch.ports[port_index].rate_bps // RATE_UNIT_BPS)
        agent.initialize_link_register(self.ts_vaddr,
                                       lambda switch, port_index: 0)

    def rate_register_bps(self, switch, port_index: int) -> float:
        """Control-plane view of one link's fair-share register (bps);
        used by the benchmark harness to plot R(t)/C."""
        from repro.core.memory_map import LINK_SCRATCH_BASE
        slot = self.rate_vaddr - LINK_SCRATCH_BASE
        return switch.mmu.peek_link_scratch(port_index, slot) * RATE_UNIT_BPS


class RCPStarFlow:
    """One flow's rate controller + rate limiter (userspace, as in §2.2)."""

    def __init__(self, task: RCPStarTask, index: int, src: Host, dst: Host,
                 dst_mac: int, capacity_bps: float, rtt_s: float,
                 packet_bytes: int = 1000,
                 probe_interval_ns: int = DEFAULT_PROBE_INTERVAL_NS,
                 update_interval_ns: int = DEFAULT_UPDATE_INTERVAL_NS,
                 alpha: float = DEFAULT_ALPHA, beta: float = DEFAULT_BETA,
                 sample_alpha: float = DEFAULT_SAMPLE_EWMA_ALPHA,
                 initial_rate_bps: Optional[int] = None,
                 max_hops: int = DEFAULT_MAX_HOPS,
                 piggyback_every: Optional[int] = None) -> None:
        self.task = task
        self.index = index
        self.src = src
        self.capacity_bps = capacity_bps
        self.rtt_s = rtt_s
        self.update_interval_ns = update_interval_ns
        self.alpha = alpha
        self.beta = beta
        self.sample_alpha = sample_alpha
        # Convert the per-sample alpha (calibrated at the standalone
        # probe cadence) into the equivalent time constant:
        # alpha = 1 - exp(-interval / tau)  =>  tau = -interval/ln(1-a).
        self.sample_tau_ns = (-probe_interval_ns
                              / math.log(1.0 - sample_alpha))

        if initial_rate_bps is None:
            initial_rate_bps = max(1, int(capacity_bps * 0.05))
        data_port = 42000 + index
        self.flow = Flow(src, dst, dst_mac, data_port,
                         rate_bps=initial_rate_bps,
                         packet_bytes=packet_bytes)
        self.sink = FlowSink(dst, data_port)

        self.endpoint = self._endpoint_for(src)
        receiver_endpoint = self._endpoint_for(dst)
        #: One deadline policy for every probe this flow sends.  It is
        #: also installed as the endpoint default so fire-and-forget
        #: update probes get bounded request records — their echoes then
        #: consume their own records instead of aliasing a collect's.
        self.probe_policy = RetryPolicy(
            timeout_ns=COLLECT_TIMEOUT_INTERVALS * probe_interval_ns,
            rtt_multiplier=DEFAULT_RTT_MULTIPLIER)
        if self.endpoint.retry_policy is None:
            self.endpoint.retry_policy = self.probe_policy
        self.collect_program = assemble(COLLECT_PROGRAM,
                                        memory_map=task.memory_map,
                                        hops=max_hops)
        #: §2.2: the controller queries "using the flow's packets, or
        #: using additional probe packets".  ``piggyback_every = N``
        #: selects the former: every Nth data packet carries the collect
        #: TPP and the receiver sends a trimmed echo (TPP only, payload
        #: stripped) back.  ``None`` selects standalone probes.
        self.piggyback_every = piggyback_every
        self.probe_interval_ns = probe_interval_ns
        self._data_packets = 0
        self._last_collect_ns = -probe_interval_ns
        self.prober: Optional[PeriodicProber] = None
        self._keepalive: Optional[PeriodicTimer] = None
        if piggyback_every is None:
            self.prober = PeriodicProber(
                self.endpoint, self.collect_program, probe_interval_ns,
                self._on_collect, dst_mac=dst_mac, task_id=task.task_id,
                jitter_fraction=0.1,
                retry_policy=self.probe_policy,
                on_timeout=self._on_collect_miss)
        else:
            receiver_endpoint.enable_trimmed_echo(task.task_id)
            self.flow.frame_factory = self._piggyback_frame
            # A paced-down flow emits few packets and would starve its
            # own sampling loop on stale (congested) samples; a keepalive
            # probe fills the gaps whenever no data packet has carried
            # the collect TPP for a full probe interval.
            self._keepalive = PeriodicTimer(src.sim, probe_interval_ns,
                                            self._keepalive_probe)

        self.links: List[LinkSample] = []
        self.rate_series = TimeSeries(f"rcp*-flow{index}.rate")
        self.updates_attempted = 0
        self.updates_sent = 0
        self.collects_missed = 0
        self.collects_rejected = 0
        self._consecutive_misses = 0

    @staticmethod
    def _endpoint_for(host: Host) -> TPPEndpoint:
        endpoint = getattr(host, "tpp", None)
        if endpoint is None:
            endpoint = TPPEndpoint(host)
            host.tpp = endpoint
        return endpoint

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #

    def start(self) -> None:
        """Start the data flow and the probe loop."""
        self.flow.start()
        if self.prober is not None:
            self.prober.start(first_delay_ns=1)
        if self._keepalive is not None:
            self._keepalive.start()

    def stop(self) -> None:
        """Stop probing and sending."""
        if self.prober is not None:
            self.prober.stop()
        if self._keepalive is not None:
            self._keepalive.stop()
        self.flow.stop()

    # ------------------------------------------------------------------ #
    # Piggybacked collect (probe rides the flow's own packets)
    # ------------------------------------------------------------------ #

    def _piggyback_frame(self, flow: Flow,
                         packet_bytes: int) -> EthernetFrame:
        self._data_packets += 1
        if self._data_packets % self.piggyback_every:
            return EthernetFrame(dst=flow.dst_mac, src=flow.src.mac,
                                 ethertype=ETHERTYPE_IPV4,
                                 payload=flow.make_datagram(packet_bytes))
        overhead = (12 + 4 * self.collect_program.n_instructions
                    + self.collect_program.memory_bytes)
        datagram = flow.make_datagram(packet_bytes, shim_bytes=overhead)
        tpp = self.endpoint.wrap(self.collect_program, payload=datagram,
                                 task_id=self.task.task_id,
                                 on_response=self._on_collect,
                                 on_timeout=self._on_collect_miss,
                                 retry_policy=self.probe_policy,
                                 dst_mac=self.flow.dst_mac)
        self._last_collect_ns = self.src.sim.now_ns
        return EthernetFrame(dst=flow.dst_mac, src=flow.src.mac,
                             ethertype=ETHERTYPE_TPP, payload=tpp)

    def _keepalive_probe(self) -> None:
        # Only a floor: fire when the data path has not carried a
        # collect TPP for several probe intervals (i.e. the flow is
        # paced way down), not between ordinary piggybacks.
        if (self.src.sim.now_ns - self._last_collect_ns
                < 2 * self.probe_interval_ns):
            return
        self._last_collect_ns = self.src.sim.now_ns
        self.endpoint.send(self.collect_program, dst_mac=self.flow.dst_mac,
                           task_id=self.task.task_id,
                           on_response=self._on_collect,
                           on_timeout=self._on_collect_miss,
                           retry_policy=self.probe_policy)

    # ------------------------------------------------------------------ #
    # Phase 1 -> 2: collect and compute
    # ------------------------------------------------------------------ #

    def _on_collect_miss(self, _record=None) -> None:
        """A collect probe expired unanswered (phase 1 produced nothing).

        §2.2's loop would silently stall on its last samples.  Instead:
        hold the current rate for an isolated miss (one lost probe is
        noise, not congestion), then decay multiplicatively on a run of
        misses — persistent loss is evidence the path is in trouble, and
        pushing stale-rate traffic into it makes things worse.  The floor
        keeps probing alive so the flow recovers when the path does.
        """
        self.collects_missed += 1
        self._consecutive_misses += 1
        if self._consecutive_misses < 2:
            return
        floor = max(1, int(self.capacity_bps * MISS_RATE_FLOOR_FRACTION))
        decayed = max(floor, int(self.flow.rate_bps * MISS_DECAY))
        if decayed < self.flow.rate_bps:
            self._apply_rate(decayed)

    def _on_collect(self, result: TPPResultView) -> None:
        self._consecutive_misses = 0
        if not result.ok:
            return
        hops = result.per_hop_words()
        if not hops:
            return
        # Plausibility gate for corrupted echoes: a truncated trace (fewer
        # hops than the established path), a switch id that contradicts
        # it, or a zero fair-share register (never legitimate — the agent
        # initializes registers to link capacity) all mark a sample set
        # that must not steer the control loop.
        if self.links:
            if len(hops) < len(self.links):
                self.collects_rejected += 1
                return
            if (len(hops) == len(self.links)
                    and any(sample.switch_id != hop[0]
                            for sample, hop in zip(self.links, hops))):
                self.collects_rejected += 1
                return
        if any(hop[3] <= 0 for hop in hops):
            self.collects_rejected += 1
            return
        if len(self.links) != len(hops):
            self.links = [LinkSample(switch_id=hop[0]) for hop in hops]
        for sample, hop in zip(self.links, hops):
            switch_id, queue_bytes, util_milli, rate_kbps, ts = hop
            sample.switch_id = switch_id
            sample.fold(queue_bytes, util_milli / 1000.0,
                        rate_kbps * RATE_UNIT_BPS, ts,
                        now_ns=result.time_ns, tau_ns=self.sample_tau_ns)

        bottleneck = min(self.links, key=lambda s: s.rate_register_bps)
        self._apply_rate(min(s.rate_register_bps for s in self.links))
        self._maybe_update(bottleneck)

    def _apply_rate(self, rate_bps: float) -> None:
        self.flow.set_rate(int(rate_bps))
        self.rate_series.append(self.src.sim.now_ns, rate_bps)

    # ------------------------------------------------------------------ #
    # Phase 2 -> 3: compute and update
    # ------------------------------------------------------------------ #

    def _maybe_update(self, link: LinkSample) -> None:
        now_ts = self.src.sim.now_ns // TIMESTAMP_UNIT_NS
        elapsed_ts = (now_ts - link.last_update_ts) & 0xFFFF_FFFF
        if elapsed_ts * TIMESTAMP_UNIT_NS < self.update_interval_ns:
            return
        self.updates_attempted += 1
        # Cap the interval used in the control equation: a register that
        # has never been updated would otherwise produce a huge step.
        interval_s = min(elapsed_ts * TIMESTAMP_UNIT_NS / 1e9,
                         4 * self.update_interval_ns / 1e9)
        offered_bps = link.utilization_avg * self.capacity_bps
        new_rate = rcp_rate_update(
            link.rate_register_bps, self.capacity_bps, offered_bps,
            link.queue_bytes_avg * 8, interval_s, self.rtt_s,
            self.alpha, self.beta)
        program = assemble(
            UPDATE_PROGRAM,
            memory_map=self.task.memory_map,
            symbols={
                "NewRate": int(new_rate) // RATE_UNIT_BPS,
                "BottleneckSwitchID": link.switch_id,
                "SeenTimestamp": link.last_update_ts,
                "NowTimestamp": now_ts & 0xFFFF_FFFF,
            })
        self.updates_sent += 1
        self.endpoint.send(program, dst_mac=self.flow.dst_mac,
                           task_id=self.task.task_id)
        # Optimistically assume our CSTORE wins; if it lost, the next
        # collect phase brings the true register value anyway.
        link.last_update_ts = now_ts & 0xFFFF_FFFF
