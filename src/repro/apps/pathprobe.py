"""Path probing with arithmetic TPPs and multi-packet scatter/gather.

Two techniques the paper sketches but does not spell out:

**Arithmetic folding.**  §2 allows instructions that "perform arithmetic
using data on the ASIC registers"; MIN/MAX fold a whole path's state into
*one word* of packet memory, independent of hop count:

    MIN [Packet:0], [Link:CapacityMbps]   ; narrowest link on the path
    MAX [Packet:1], [Queue:QueueSize]     ; deepest queue on the path

A stack-addressed query needs ``words x hops`` of preallocated memory;
the folded version needs two words for any path length — the difference
matters because packet memory is the scarce resource (§3.3's 40 B/hop).

**Scatter/gather.**  "End-hosts can use multiple packets if a single
packet is insufficient for a network task" (§3.2).  The
:class:`SwitchInventory` task first discovers the path (one PUSH TPP),
then scatters one CEXEC-gated TPP per switch, each collecting that
switch's global registers into absolute-addressed packet memory, and
gathers the responses into a per-switch report.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional

from repro.core.assembler import assemble
from repro.core.memory_map import MemoryMap
from repro.endhost.client import TPPEndpoint, TPPResultView

FOLD_PROGRAM = """
.mode absolute
.memory 2
.data 0 0xFFFFFFFF          ; MIN identity
.data 1 0x0                 ; MAX identity
MIN [Packet:0], [Link:CapacityMbps]
MAX [Packet:1], [Queue:QueueSize]
"""

DISCOVER_PROGRAM = "PUSH [Switch:SwitchID]"

INVENTORY_PROGRAM = """
.mode absolute
.memory 5
CEXEC [Switch:SwitchID], 0xFFFFFFFF, $TargetSwitch
LOAD [Switch:L2TableEntries], [Packet:0]
LOAD [Switch:TCAMEntries], [Packet:1]
LOAD [Switch:PacketsSwitched], [Packet:2]
LOAD [Switch:TPPsExecuted], [Packet:3]
"""


@dataclass
class PathSummary:
    """What one folded probe learned about a path."""

    bottleneck_capacity_mbps: int
    max_queue_bytes: int


class PathBottleneckProbe:
    """One-word-per-statistic path characterization via MIN/MAX."""

    def __init__(self, endpoint: TPPEndpoint, dst_mac: int,
                 memory_map: Optional[MemoryMap] = None) -> None:
        self.endpoint = endpoint
        self.dst_mac = dst_mac
        self.program = assemble(FOLD_PROGRAM, memory_map=memory_map)

    def probe(self, on_summary: Callable[[PathSummary], None]) -> None:
        """Send one probe; the callback gets the folded path summary."""

        def on_response(result: TPPResultView) -> None:
            on_summary(PathSummary(
                bottleneck_capacity_mbps=result.word(0),
                max_queue_bytes=result.word(1),
            ))

        self.endpoint.send(self.program, dst_mac=self.dst_mac,
                           on_response=on_response)


@dataclass
class SwitchReport:
    """Global registers gathered from one switch."""

    switch_id: int
    l2_entries: int
    tcam_entries: int
    packets_switched: int
    tpps_executed: int


class SwitchInventory:
    """Scatter/gather collection of every path switch's global state."""

    def __init__(self, endpoint: TPPEndpoint, dst_mac: int,
                 memory_map: Optional[MemoryMap] = None,
                 max_hops: int = 8) -> None:
        self.endpoint = endpoint
        self.dst_mac = dst_mac
        self.memory_map = memory_map
        self.max_hops = max_hops
        self.reports: Dict[int, SwitchReport] = {}
        self._on_complete: Optional[Callable[[Dict[int, SwitchReport]],
                                             None]] = None
        self._outstanding = 0

    def collect(self, on_complete: Callable[[Dict[int, SwitchReport]],
                                            None]) -> None:
        """Discover the path, then scatter one inventory TPP per switch."""
        self._on_complete = on_complete
        discover = assemble(DISCOVER_PROGRAM, memory_map=self.memory_map,
                            hops=self.max_hops)
        self.endpoint.send(discover, dst_mac=self.dst_mac,
                           on_response=self._on_path)

    def _on_path(self, result: TPPResultView) -> None:
        switch_ids = [words[0] for words in result.per_hop_words()]
        if not switch_ids:
            self._finish()
            return
        self._outstanding = len(switch_ids)
        for switch_id in switch_ids:
            program = assemble(INVENTORY_PROGRAM,
                               memory_map=self.memory_map,
                               symbols={"TargetSwitch": switch_id})
            self.endpoint.send(
                program, dst_mac=self.dst_mac,
                on_response=lambda r, sid=switch_id:
                self._on_inventory(sid, r))

    def _on_inventory(self, switch_id: int,
                      result: TPPResultView) -> None:
        self.reports[switch_id] = SwitchReport(
            switch_id=switch_id,
            l2_entries=result.word(0),
            tcam_entries=result.word(1),
            packets_switched=result.word(2),
            tpps_executed=result.word(3),
        )
        self._outstanding -= 1
        if self._outstanding == 0:
            self._finish()

    def _finish(self) -> None:
        if self._on_complete is not None:
            callback, self._on_complete = self._on_complete, None
            callback(dict(self.reports))
