"""Per-hop latency breakdown from in-packet timestamps (§2.1).

The micro-burst example infers queueing latency from queue *sizes*; with
the switch clock mapped into the address space the same machinery can
measure it directly: a hop-addressed TPP records each switch's clock and
the occupancy of the queue the packet is about to join::

    .mode hop
    LOAD [Switch:ClockLo], [Packet:Hop[0]]
    LOAD [Queue:QueueSize], [Packet:Hop[1]]

The difference between consecutive hops' clocks is the packet's actual
per-segment latency — pipeline, queueing, serialization and propagation
— attributed hop by hop, per packet.  This is precisely the measurement
model INT standardized years later.

Clock caveat handled here: the 32-bit ``ClockLo`` wraps every ~4.3 s, so
deltas are computed modulo 2^32 (segment latencies are far below the wrap
period).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.analysis.timeseries import TimeSeries
from repro.core.assembler import assemble
from repro.core.memory_map import MemoryMap
from repro.endhost.client import TPPEndpoint, TPPResultView
from repro.endhost.probes import PeriodicProber
from repro.net.host import Host

PROFILE_PROGRAM = """
.mode hop
LOAD [Switch:SwitchID], [Packet:Hop[0]]
LOAD [Switch:ClockLo], [Packet:Hop[1]]
LOAD [Queue:QueueSize], [Packet:Hop[2]]
"""

_WRAP = 1 << 32


def clock_delta_ns(later: int, earlier: int) -> int:
    """Difference of two 32-bit clock samples, wrap-aware."""
    return (later - earlier) % _WRAP


@dataclass
class HopTiming:
    """One segment of a packet's journey."""

    switch_id: int
    arrival_clock_ns: int
    queue_bytes: int
    #: Time from the *previous* switch's pipeline to this one's —
    #: queueing + serialization + propagation of the segment in between.
    #: ``None`` on the first hop (no upstream switch to diff against).
    segment_latency_ns: Optional[int] = None


@dataclass
class PathProfile:
    """Decoded per-hop timing of one probe."""

    hops: List[HopTiming]
    received_at_ns: int

    def total_network_latency_ns(self) -> int:
        """First-to-last switch latency seen by this packet."""
        if len(self.hops) < 2:
            return 0
        return clock_delta_ns(self.hops[-1].arrival_clock_ns,
                              self.hops[0].arrival_clock_ns)

    def worst_segment(self) -> Optional[HopTiming]:
        """The hop whose inbound segment contributed the most latency."""
        candidates = [hop for hop in self.hops
                      if hop.segment_latency_ns is not None]
        if not candidates:
            return None
        return max(candidates, key=lambda hop: hop.segment_latency_ns)


class LatencyProfiler:
    """Periodic per-hop latency profiling of one path."""

    def __init__(self, src: Host, dst_mac: int, interval_ns: int,
                 memory_map: Optional[MemoryMap] = None,
                 max_hops: int = 8) -> None:
        endpoint = getattr(src, "tpp", None)
        if endpoint is None:
            endpoint = TPPEndpoint(src)
            src.tpp = endpoint
        self.endpoint = endpoint
        self.program = assemble(PROFILE_PROGRAM, memory_map=memory_map,
                                hops=max_hops)
        self.prober = PeriodicProber(endpoint, self.program, interval_ns,
                                     self._on_result, dst_mac=dst_mac)
        self.profiles: List[PathProfile] = []
        #: Per-switch time series of inbound segment latency.
        self.segment_series: Dict[int, TimeSeries] = {}

    def start(self, first_delay_ns: Optional[int] = None) -> None:
        """Begin profiling."""
        self.prober.start(first_delay_ns)

    def stop(self) -> None:
        """Stop profiling."""
        self.prober.stop()

    def _on_result(self, result: TPPResultView) -> None:
        if not result.ok:
            return
        profile = decode_profile(result)
        self.profiles.append(profile)
        for hop in profile.hops:
            if hop.segment_latency_ns is None:
                continue
            series = self.segment_series.get(hop.switch_id)
            if series is None:
                series = TimeSeries(f"segment.sw{hop.switch_id}")
                self.segment_series[hop.switch_id] = series
            series.append(result.time_ns, hop.segment_latency_ns)

    def mean_segment_latency_ns(self, switch_id: int) -> float:
        """Average inbound-segment latency at one switch."""
        return self.segment_series[switch_id].mean()


def decode_profile(result: TPPResultView) -> PathProfile:
    """Turn a returned profile TPP into a :class:`PathProfile`."""
    hops: List[HopTiming] = []
    previous_clock: Optional[int] = None
    for switch_id, clock, queue_bytes in result.per_hop_words():
        timing = HopTiming(switch_id=switch_id, arrival_clock_ns=clock,
                           queue_bytes=queue_bytes)
        if previous_clock is not None:
            timing.segment_latency_ns = clock_delta_ns(clock,
                                                       previous_clock)
        hops.append(timing)
        previous_clock = clock
    return PathProfile(hops=hops, received_at_ns=result.time_ns)
