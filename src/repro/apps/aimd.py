"""An AIMD end-host controller — context baseline for the RCP experiments.

Not part of the paper's claims; included so the benchmark harness can show
what the same TPP telemetry looks like when driven by a TCP-like additive-
increase/multiplicative-decrease policy instead of RCP's explicit rates.
It reuses the *collect* phase only (no switch state is written), which also
demonstrates that multiple control algorithms can share the same read-only
telemetry TPP.
"""

from __future__ import annotations

from typing import Optional

from repro.analysis.timeseries import TimeSeries
from repro.core.assembler import assemble
from repro.core.memory_map import MemoryMap
from repro.endhost.client import TPPEndpoint, TPPResultView
from repro.endhost.flows import Flow, FlowSink
from repro.endhost.probes import PeriodicProber
from repro.net.host import Host

COLLECT_PROGRAM = """
PUSH [Switch:SwitchID]
PUSH [Queue:QueueSize]
"""


class AIMDFlow:
    """Probe-driven AIMD: back off when any path queue exceeds a threshold."""

    def __init__(self, index: int, src: Host, dst: Host, dst_mac: int,
                 capacity_bps: float,
                 probe_interval_ns: int = 5_000_000,
                 queue_threshold_bytes: int = 30_000,
                 increase_fraction: float = 0.02,
                 decrease_factor: float = 0.5,
                 packet_bytes: int = 1000,
                 memory_map: Optional[MemoryMap] = None) -> None:
        self.index = index
        self.src = src
        self.capacity_bps = capacity_bps
        self.queue_threshold_bytes = queue_threshold_bytes
        self.increase_bps = increase_fraction * capacity_bps
        self.decrease_factor = decrease_factor

        data_port = 43000 + index
        self.flow = Flow(src, dst, dst_mac, data_port,
                         rate_bps=max(1, int(0.05 * capacity_bps)),
                         packet_bytes=packet_bytes)
        self.sink = FlowSink(dst, data_port)
        endpoint = getattr(src, "tpp", None)
        if endpoint is None:
            endpoint = TPPEndpoint(src)
            src.tpp = endpoint
        if getattr(dst, "tpp", None) is None:
            dst.tpp = TPPEndpoint(dst)
        self.endpoint = endpoint
        program = assemble(COLLECT_PROGRAM, memory_map=memory_map)
        self.prober = PeriodicProber(endpoint, program, probe_interval_ns,
                                     self._on_probe, dst_mac=dst_mac,
                                     on_timeout=self._on_probe_timeout)
        self.rate_series = TimeSeries(f"aimd-flow{index}.rate")
        self.backoffs = 0

    def start(self) -> None:
        """Start the flow and its probe loop."""
        self.flow.start()
        self.prober.start(first_delay_ns=1)

    def stop(self) -> None:
        """Stop the flow and its probe loop."""
        self.prober.stop()
        self.flow.stop()

    def _on_probe(self, result: TPPResultView) -> None:
        if not result.ok:
            return
        hops = result.per_hop_words()
        if not hops:
            return
        worst_queue = max(queue for _, queue in hops)
        if worst_queue > self.queue_threshold_bytes:
            self._decrease()
        else:
            self._set_rate(self.flow.rate_bps + self.increase_bps)

    def _on_probe_timeout(self, _record) -> None:
        # A probe that never came back is the strongest congestion signal
        # AIMD knows (it is how TCP reads loss): multiplicative decrease,
        # exactly as if the queue sample had crossed the threshold.
        self._decrease()

    def _decrease(self) -> None:
        self.backoffs += 1
        self._set_rate(self.flow.rate_bps * self.decrease_factor)

    def _set_rate(self, rate: float) -> None:
        rate = min(self.capacity_bps, max(0.01 * self.capacity_bps, rate))
        self.flow.set_rate(int(rate))
        self.rate_series.append(self.src.sim.now_ns, rate)
