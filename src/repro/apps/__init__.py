"""The paper's three network tasks, plus baselines.

- :mod:`repro.apps.microburst` -- Section 2.1: per-packet queue-size
  telemetry and micro-burst detection, with the coarse control-plane
  poller it beats.
- :mod:`repro.apps.rcp` -- Section 2.2: RCP*, the end-host RCP built from
  collect/compute/update TPP phases.
- :mod:`repro.apps.rcp_router` -- the in-network RCP baseline (equivalent
  of the paper's ns-2 simulation) used as Figure 2's reference curve.
- :mod:`repro.apps.aimd` -- a simple AIMD end-host controller for context.
- :mod:`repro.apps.ndb` -- Section 2.3: the forwarding-plane debugger:
  per-packet path/rule traces, reassembly, and policy verification.
"""

from repro.apps.microburst import (
    BurstDetector,
    BurstyTrafficGenerator,
    CoarsePoller,
    TelemetryStream,
)
from repro.apps.rcp import RCPStarFlow, RCPStarTask
from repro.apps.rcp_common import RCPHeader, rcp_rate_update
from repro.apps.rcp_router import (
    RCPBaselineFlow,
    RCPLinkAgent,
    RCPRouterNetwork,
)
from repro.apps.aimd import AIMDFlow
from repro.apps.ndb import NdbCollector, NdbTagger, PathVerifier
from repro.apps.inband_baselines import (
    ECNFlow,
    install_ecn,
    install_record_route,
)
from repro.apps.accounting import (
    LedgerAuditor,
    LedgerPublisher,
    TrafficLedger,
)
from repro.apps.latency import LatencyProfiler, PathProfile
from repro.apps.pathprobe import PathBottleneckProbe, SwitchInventory

__all__ = [
    "BurstDetector",
    "BurstyTrafficGenerator",
    "CoarsePoller",
    "TelemetryStream",
    "RCPStarFlow",
    "RCPStarTask",
    "RCPHeader",
    "rcp_rate_update",
    "RCPLinkAgent",
    "RCPRouterNetwork",
    "RCPBaselineFlow",
    "AIMDFlow",
    "NdbCollector",
    "NdbTagger",
    "PathVerifier",
    "ECNFlow",
    "install_ecn",
    "install_record_route",
    "LedgerAuditor",
    "LedgerPublisher",
    "TrafficLedger",
    "LatencyProfiler",
    "PathProfile",
    "PathBottleneckProbe",
    "SwitchInventory",
]
