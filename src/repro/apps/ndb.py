"""ndb — the forwarding-plane debugger of §2.3.

"Using TPPs, end-hosts can get the same level of visibility as ndb by
having a trusted entity insert the TPP shown below on all its packets."

Pieces:

- :class:`NdbTagger` — the trusted entity: wraps every data packet of a
  flow in the trace TPP (hop-addressed, one record per switch)::

      LOAD [Switch:ID],                        [Packet:Hop[0]]
      LOAD [PacketMetadata:MatchedEntryID],    [Packet:Hop[1]]
      LOAD [PacketMetadata:MatchedEntryVersion], [Packet:Hop[2]]
      LOAD [PacketMetadata:InputPort],         [Packet:Hop[3]]

  (the paper's listing uses three PUSHes; we also record the entry version
  because versions are how ndb detects packets forwarded by stale rules —
  and hop addressing exercises §3.2.2's base:offset scheme).

- :class:`NdbCollector` — the reassembly servers: taps the receiver's TPP
  endpoint and turns every arriving packet into a :class:`PacketJourney`
  "to present a unified view of a packet's journey through the network",
  while the encapsulated datagram is delivered to the application
  untouched (no packet copies needed — the advantage over ndb [8]).

- :class:`PathVerifier` — checks each journey against the controller's
  *intended* forwarding state and reports typed violations: a packet that
  took the wrong path, matched a stale (old-version) rule, or matched a
  rule the controller never installed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.assembler import AssembledProgram, assemble
from repro.core.memory_map import MemoryMap
from repro.core.tpp import TPPSection
from repro.endhost.client import TPPEndpoint
from repro.endhost.flows import Flow
from repro.net.host import Host
from repro.net.packet import ETHERTYPE_TPP, EthernetFrame

TRACE_PROGRAM = """
.mode hop
LOAD [Switch:ID], [Packet:Hop[0]]
LOAD [PacketMetadata:MatchedEntryID], [Packet:Hop[1]]
LOAD [PacketMetadata:MatchedEntryVersion], [Packet:Hop[2]]
LOAD [PacketMetadata:InputPort], [Packet:Hop[3]]
"""

WORDS_PER_HOP = 4


@dataclass(frozen=True)
class HopRecord:
    """What one switch recorded about one packet.

    ``gap`` marks a hop the packet *executed on* but whose record could
    not be recovered (the trace arrived truncated — e.g. corrupted in
    flight).  Gap records carry ``-1`` in every field; consumers must not
    interpret them as observations.
    """

    switch_id: int
    entry_id: int
    entry_version: int
    input_port: int
    gap: bool = False


#: Placeholder for a hop whose record was lost with the truncated tail.
GAP_HOP = HopRecord(switch_id=-1, entry_id=-1, entry_version=-1,
                    input_port=-1, gap=True)


@dataclass
class PacketJourney:
    """The reassembled view of one packet's trip through the network."""

    frame_uid: int
    received_at_ns: int
    hops: List[HopRecord] = field(default_factory=list)

    def switch_ids(self) -> List[int]:
        """The switches traversed, in order (``-1`` for gap hops)."""
        return [hop.switch_id for hop in self.hops]

    def has_gaps(self) -> bool:
        """Whether any hop record was lost to truncation/corruption."""
        return any(hop.gap for hop in self.hops)


def trace_program(memory_map: Optional[MemoryMap] = None,
                  hops: int = 8) -> AssembledProgram:
    """Assemble the ndb trace TPP."""
    return assemble(TRACE_PROGRAM, memory_map=memory_map, hops=hops)


class NdbTagger:
    """Wraps a flow's data packets in the trace TPP (the trusted entity)."""

    def __init__(self, memory_map: Optional[MemoryMap] = None,
                 hops: int = 8, task_id: int = 0) -> None:
        self.program = trace_program(memory_map, hops)
        self.task_id = task_id
        self.packets_tagged = 0

    def attach(self, flow: Flow) -> None:
        """Make the flow emit TPP-wrapped frames from now on."""
        flow.frame_factory = self._make_frame

    def _make_frame(self, flow: Flow, packet_bytes: int) -> EthernetFrame:
        tpp_overhead = (12 + 4 * self.program.n_instructions
                        + self.program.memory_bytes)
        datagram = flow.make_datagram(packet_bytes, shim_bytes=tpp_overhead)
        tpp = self.program.build(payload=datagram, task_id=self.task_id)
        self.packets_tagged += 1
        return EthernetFrame(dst=flow.dst_mac, src=flow.src.mac,
                             ethertype=ETHERTYPE_TPP, payload=tpp)


class NdbCollector:
    """Receiver-side journey reassembly.

    ``task_id`` filters the endpoint's TPP stream to the ndb task's own
    packets — essential when other tasks' TPPs (probes, profilers) also
    terminate at this host.  ``None`` collects everything (fine for
    single-task experiments).
    """

    def __init__(self, host: Host, task_id: Optional[int] = None) -> None:
        endpoint = getattr(host, "tpp", None)
        if endpoint is None:
            endpoint = TPPEndpoint(host)
            host.tpp = endpoint
        self.host = host
        self.task_id = task_id
        self.journeys: List[PacketJourney] = []
        self.truncated_traces = 0
        endpoint.add_tap(self._on_tpp)

    def _on_tpp(self, tpp: TPPSection, frame: EthernetFrame) -> None:
        if self.task_id is not None and tpp.task_id != self.task_id:
            return
        journey = PacketJourney(frame_uid=frame.uid,
                                received_at_ns=self.host.sim.now_ns)
        word = tpp.word_size
        perhop = tpp.perhop_len_bytes
        record_bytes = WORDS_PER_HOP * word
        truncated = False
        # The hop counter says how many switches executed the TPP; the
        # memory says how many records survived the trip.  A trace whose
        # memory arrived truncated gets explicit gap markers for the tail
        # instead of being mis-assembled (or crashing its reader).
        for hop in range(tpp.hops_executed()):
            base = hop * perhop
            if base + record_bytes > len(tpp.memory):
                journey.hops.append(GAP_HOP)
                truncated = True
                continue
            journey.hops.append(HopRecord(
                switch_id=tpp.read_word(base),
                entry_id=tpp.read_word(base + word),
                entry_version=tpp.read_word(base + 2 * word),
                input_port=tpp.read_word(base + 3 * word),
            ))
        if truncated:
            self.truncated_traces += 1
        self.journeys.append(journey)


@dataclass(frozen=True)
class Violation:
    """One detected mismatch between intent and observed forwarding."""

    kind: str  # "wrong-path" | "stale-rule" | "unknown-rule" | "trace-gap"
    frame_uid: int
    switch_id: Optional[int] = None
    detail: str = ""


class PathVerifier:
    """Checks journeys against the controller's intended state.

    ``expected_path`` is the intended sequence of switch ids for the flow
    under test; ``current_entries`` maps switch id -> the (entry_id,
    version) the controller believes is forwarding this flow's packets on
    that switch.  Journeys recorded *before* the last policy change can be
    excluded with ``since_ns``.
    """

    def __init__(self, expected_path: Sequence[int],
                 current_entries: Dict[int, Tuple[int, int]]) -> None:
        self.expected_path = list(expected_path)
        self.current_entries = dict(current_entries)

    def verify(self, journeys: Sequence[PacketJourney],
               since_ns: int = 0) -> List[Violation]:
        """All violations across the given journeys."""
        violations: List[Violation] = []
        for journey in journeys:
            if journey.received_at_ns < since_ns:
                continue
            violations.extend(self.verify_one(journey))
        return violations

    def verify_one(self, journey: PacketJourney) -> List[Violation]:
        """Violations for a single packet.

        A journey with gap hops (truncated trace) yields a ``trace-gap``
        violation and no path verdict: the evidence is incomplete, and
        reporting "wrong path" off a damaged trace would page an operator
        for a link impairment.  Hops that *did* survive are still checked
        against the controller's rules.
        """
        violations: List[Violation] = []
        observed = journey.switch_ids()
        if journey.has_gaps():
            violations.append(Violation(
                kind="trace-gap", frame_uid=journey.frame_uid,
                detail=f"{sum(1 for h in journey.hops if h.gap)} of "
                       f"{len(journey.hops)} hop records lost; "
                       f"recovered path {observed}"))
        elif observed != self.expected_path:
            violations.append(Violation(
                kind="wrong-path", frame_uid=journey.frame_uid,
                detail=f"expected {self.expected_path}, took {observed}"))
        for hop in journey.hops:
            if hop.gap:
                continue
            intended = self.current_entries.get(hop.switch_id)
            if intended is None:
                continue  # switch not on the intended path; wrong-path
                # already covers it.
            entry_id, version = intended
            if hop.entry_id != entry_id:
                violations.append(Violation(
                    kind="unknown-rule", frame_uid=journey.frame_uid,
                    switch_id=hop.switch_id,
                    detail=f"matched entry {hop.entry_id}, controller "
                           f"installed {entry_id}"))
            elif hop.entry_version != version:
                violations.append(Violation(
                    kind="stale-rule", frame_uid=journey.frame_uid,
                    switch_id=hop.switch_id,
                    detail=f"entry {entry_id} at version "
                           f"{hop.entry_version}, expected {version}"))
        return violations
