"""The purpose-built in-band mechanisms §4 contrasts TPPs with.

"There have been numerous efforts to expose switch statistics through the
dataplane ... One example is Explicit Congestion Notification (ECN) in
which a router stamps a bit in the IP header whenever the egress queue
occupancy exceeds a configurable threshold.  Another example is IP Record
Route, an IP option that enables routers to insert the interface IP
address on the packet.  Instead of anticipating future requirements and
designing specific solutions, we adopt a more generic approach."

Both mechanisms are implemented here as switch dataplane hooks, each the
baked-in ASIC feature it would be in practice:

- :func:`install_ecn` — threshold marking of the CE codepoint, plus
  :class:`ECNFlow`, a DCTCP-flavoured end-host responder, so the
  comparison benches can run a real congestion-control loop over it;
- :func:`install_record_route` — RFC 791-style route recording into
  preallocated option slots.

What the comparison shows (see ``benchmarks/test_sec4_comparison.py``):
each mechanism answers exactly one question fixed at ASIC design time —
"was some queue above a threshold?" (one bit), "which routers did I
cross?" (addresses only) — whereas the same read-only TPP machinery
answers both *and* carries the quantitative state (how big, which queue,
what utilization) that RCP*/ndb/micro-burst detection need.
"""

from __future__ import annotations

from typing import Sequence

from repro.analysis.timeseries import TimeSeries
from repro.asic.switch import TPPSwitch
from repro.endhost.flows import Flow, FlowSink
from repro.net.host import Host
from repro.net.packet import Datagram, EthernetFrame
from repro.sim.timers import PeriodicTimer

ECN_NOT_ECT = 0
ECN_ECT = 1
ECN_CE = 3

DEFAULT_MARK_THRESHOLD_BYTES = 30_000


def install_ecn(switches: Sequence[TPPSwitch],
                threshold_bytes: int = DEFAULT_MARK_THRESHOLD_BYTES) -> None:
    """Add ECN marking to every switch: ECT packets that find their
    egress queue above the threshold are re-stamped CE."""
    for switch in switches:
        switch.datagram_hooks.append(_ecn_hook(threshold_bytes))


def _ecn_hook(threshold_bytes: int):
    def hook(frame, datagram, metadata, egress_port) -> None:
        if datagram.ecn != ECN_ECT:
            return
        queue = egress_port.queue_for(metadata.queue_id)
        if queue.backlog_bytes > threshold_bytes:
            datagram.ecn = ECN_CE
    return hook


def install_record_route(switches: Sequence[TPPSwitch]) -> None:
    """Add RFC 791 record-route behaviour to every switch: packets whose
    datagram carries the option get the switch id appended while
    preallocated slots remain."""
    for switch in switches:
        switch.datagram_hooks.append(_record_route_hook(switch))


def _record_route_hook(switch: TPPSwitch):
    def hook(frame, datagram, metadata, egress_port) -> None:
        record = datagram.route_record
        if record is None:
            return
        if len(record) < datagram.route_record_slots:
            record.append(switch.switch_id)
    return hook


class ECNFlow:
    """A DCTCP-flavoured rate controller driven by CE marks.

    The receiver echoes each packet's ECN codepoint in a feedback
    datagram; the sender maintains the DCTCP fraction estimate
    ``alpha <- (1-g) alpha + g F`` over windows of feedback and adjusts
    its pacing rate: multiplicative decrease by ``alpha/2`` when marks
    arrive, additive increase otherwise.
    """

    def __init__(self, index: int, src: Host, dst: Host, dst_mac: int,
                 src_mac: int, capacity_bps: float,
                 packet_bytes: int = 1000,
                 update_interval_ns: int = 10_000_000,
                 gain: float = 0.3,
                 increase_fraction: float = 0.03) -> None:
        self.index = index
        self.src = src
        self.dst = dst
        self.src_mac = src_mac
        self.capacity_bps = capacity_bps
        self.gain = gain
        self.increase_bps = increase_fraction * capacity_bps
        self.alpha = 0.0
        self._window_packets = 0
        self._window_marked = 0

        data_port = 44000 + index
        feedback_port = 45000 + index
        self._feedback_port = feedback_port
        self.flow = Flow(src, dst, dst_mac, data_port,
                         rate_bps=max(1, int(0.05 * capacity_bps)),
                         packet_bytes=packet_bytes,
                         frame_factory=self._make_frame)
        self.sink = FlowSink(dst, data_port)
        self.rate_series = TimeSeries(f"ecn-flow{index}.rate")
        self.marks_seen = 0
        src.on_udp_port(feedback_port, self._on_feedback)
        self._updater = PeriodicTimer(src.sim, update_interval_ns,
                                      self._update_rate)

    # -- sender side ----------------------------------------------------- #

    def _make_frame(self, flow: Flow, packet_bytes: int) -> EthernetFrame:
        datagram = flow.make_datagram(packet_bytes)
        datagram.ecn = ECN_ECT
        from repro.net.packet import ETHERTYPE_IPV4
        return EthernetFrame(dst=flow.dst_mac, src=flow.src.mac,
                             ethertype=ETHERTYPE_IPV4, payload=datagram)

    def _on_feedback(self, datagram: Datagram, frame) -> None:
        self._window_packets += 1
        if datagram.ecn == ECN_CE:
            self._window_marked += 1
            self.marks_seen += 1

    def _update_rate(self) -> None:
        fraction = 0.0
        if self._window_packets:
            fraction = self._window_marked / self._window_packets
            self.alpha += self.gain * (fraction - self.alpha)
        self._window_packets = 0
        self._window_marked = 0
        rate = self.flow.rate_bps
        if fraction > 0:
            # DCTCP: scale the cut by the smoothed mark fraction, but
            # only in windows that actually saw marks.
            rate = rate * (1 - self.alpha / 2)
        else:
            rate = rate + self.increase_bps
        rate = min(self.capacity_bps, max(0.01 * self.capacity_bps, rate))
        self.flow.set_rate(int(rate))
        self.rate_series.append(self.src.sim.now_ns, rate)

    # -- receiver side ----------------------------------------------------- #

    def attach_receiver(self) -> None:
        """Echo every data packet's ECN codepoint back to the sender."""
        self.dst.on_udp_port(self.flow.udp_port, self._on_data)

    def _on_data(self, datagram: Datagram, frame) -> None:
        self.sink._on_datagram(datagram, frame)
        feedback = Datagram(src_ip=self.dst.ip, dst_ip=self.src.ip,
                            src_port=self._feedback_port,
                            dst_port=self._feedback_port,
                            payload=None, ecn=datagram.ecn)
        self.dst.send_datagram(self.src_mac, feedback)

    def start(self) -> None:
        """Register the receiver, start pacing and the control loop."""
        self.attach_receiver()
        self.flow.start()
        self._updater.start()

    def stop(self) -> None:
        self._updater.stop()
        self.flow.stop()


def send_record_route_probe(src: Host, dst: Host, dst_mac: int,
                            slots: int = 9, dst_port: int = 46000) -> Datagram:
    """Emit one record-route datagram; the returned object's
    ``route_record`` fills in as it crosses switches."""
    datagram = Datagram(src_ip=src.ip, dst_ip=dst.ip, src_port=dst_port,
                        dst_port=dst_port, payload=None,
                        route_record_slots=slots)
    src.send_datagram(dst_mac, datagram)
    return datagram
