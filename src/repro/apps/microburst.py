"""Micro-burst detection (paper §2.1).

"Queue occupancy fluctuations due to small-timescale congestion (i.e.
micro-bursts) are hard to detect as queues change at timescales of a few
RTTs ... Today's monitoring mechanisms operate only on timescales that are
10s of seconds at best."

Pieces:

- :class:`TelemetryStream` — per-RTT (or faster) TPP probing of
  ``[Queue:QueueSize]`` along a path; one queue-occupancy time series per
  hop, recorded the instant each probe traversed the switch.
- :class:`CoarsePoller` — the strawman it beats: an SNMP-style
  control-plane poller reading the same queue every ``interval`` (default
  10 s).
- :class:`BurstDetector` — turns an occupancy series into discrete bursts
  (threshold crossings) and computes recall against ground truth, which is
  how the E6/E9 benchmarks score visibility granularities.
- :class:`BurstyTrafficGenerator` — an ON/OFF cross-traffic source that
  creates genuine 100 µs-scale bursts.
- :class:`HeavyHitterMonitor` — the per-flow upgrade of the one-counter-
  per-queue pipeline above: a heavy-hitter sketch in the congested
  switch's scratch SRAM, updated by certified per-flow TPPs and decoded
  on the end host, answers *which flows* caused the burst, not just that
  a queue filled.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.analysis.timeseries import TimeSeries
from repro.core.assembler import assemble
from repro.core.memory_map import MemoryMap
from repro.endhost.client import TPPEndpoint, TPPResultView
from repro.endhost.flows import Flow
from repro.endhost.probes import PeriodicProber
from repro.net.host import Host
from repro.net.port import Port
from repro.sim.simulator import Simulator
from repro.sim.timers import OneShotTimer, PeriodicTimer

TELEMETRY_PROGRAM = """
PUSH [Switch:SwitchID]
PUSH [Queue:QueueSize]
"""

DEFAULT_COARSE_INTERVAL_NS = 10_000_000_000  # "10s of seconds at best"


class TelemetryStream:
    """TPP-based queue telemetry along one path."""

    def __init__(self, src: Host, dst_mac: int,
                 interval_ns: int, memory_map: Optional[MemoryMap] = None,
                 hops: int = 8, max_outstanding: int = 16) -> None:
        self.src = src
        endpoint = getattr(src, "tpp", None)
        if endpoint is None:
            endpoint = TPPEndpoint(src)
            src.tpp = endpoint
        self.endpoint = endpoint
        self.program = assemble(TELEMETRY_PROGRAM, memory_map=memory_map,
                                hops=hops)
        #: The prober's deadline + outstanding cap keep telemetry alive
        #: (and its pending table bounded) when probes are being lost —
        #: a sample stream with holes still catches bursts; a stalled
        #: prober catches nothing.
        self.prober = PeriodicProber(endpoint, self.program, interval_ns,
                                     self._on_result, dst_mac=dst_mac,
                                     max_outstanding=max_outstanding)
        #: One occupancy series per switch id observed on the path.
        self.queue_series: Dict[int, TimeSeries] = {}
        self.samples = 0
        self.faulted_probes = 0

    def start(self, first_delay_ns: Optional[int] = None) -> None:
        """Begin probing."""
        self.prober.start(first_delay_ns)

    def stop(self) -> None:
        """Stop probing."""
        self.prober.stop()

    @property
    def probe_timeouts(self) -> int:
        """Probes that expired unanswered (lost somewhere on the loop)."""
        return self.prober.probes_timed_out

    @property
    def loss_rate_estimate(self) -> float:
        """The prober's EWMA estimate of probe loss on this path."""
        return self.prober.loss_rate_estimate

    def _on_result(self, result: TPPResultView) -> None:
        if not result.ok:
            self.faulted_probes += 1
            return
        for switch_id, queue_bytes in result.per_hop_words():
            series = self.queue_series.get(switch_id)
            if series is None:
                series = TimeSeries(f"queue.sw{switch_id}")
                self.queue_series[switch_id] = series
            series.append(result.time_ns, queue_bytes)
            self.samples += 1

    def series_for(self, switch_id: int) -> TimeSeries:
        """Occupancy series observed at one switch."""
        return self.queue_series[switch_id]


class CoarsePoller:
    """Control-plane strawman: direct periodic reads of one queue.

    Reads ``port.queue.occupancy_bytes`` out-of-band (no packets), the way
    an SNMP/CLI poller would, at a fixed interval.
    """

    def __init__(self, sim: Simulator, port: Port,
                 interval_ns: int = DEFAULT_COARSE_INTERVAL_NS,
                 name: str = "coarse") -> None:
        self.series = TimeSeries(name)
        self._port = port
        self._sim = sim
        self._timer = PeriodicTimer(sim, interval_ns, self._poll)

    def start(self) -> None:
        """Begin polling (first sample after one interval)."""
        self._timer.start()

    def stop(self) -> None:
        """Stop polling."""
        self._timer.stop()

    def _poll(self) -> None:
        self.series.append(self._sim.now_ns,
                           self._port.queue.occupancy_bytes)


@dataclass(frozen=True)
class Burst:
    """One detected occupancy excursion above the threshold."""

    start_ns: int
    end_ns: int
    peak_bytes: float

    @property
    def duration_ns(self) -> int:
        return self.end_ns - self.start_ns

    def overlaps(self, other: "Burst", slack_ns: int = 0) -> bool:
        """Whether two bursts intersect in time (with optional slack)."""
        return (self.start_ns - slack_ns <= other.end_ns
                and other.start_ns - slack_ns <= self.end_ns)


class BurstDetector:
    """Threshold-based burst extraction from an occupancy series."""

    def __init__(self, threshold_bytes: float,
                 min_duration_ns: int = 0) -> None:
        if threshold_bytes <= 0:
            raise ValueError(
                f"threshold must be positive: {threshold_bytes}")
        self.threshold_bytes = threshold_bytes
        self.min_duration_ns = min_duration_ns

    def detect(self, series: TimeSeries) -> List[Burst]:
        """Contiguous runs of samples above the threshold."""
        bursts: List[Burst] = []
        start: Optional[int] = None
        last_time = 0
        peak = 0.0
        for time_ns, value in series.samples():
            if value >= self.threshold_bytes:
                if start is None:
                    start = time_ns
                    peak = value
                else:
                    peak = max(peak, value)
                last_time = time_ns
            elif start is not None:
                self._close(bursts, start, last_time, peak)
                start = None
        if start is not None:
            self._close(bursts, start, last_time, peak)
        return bursts

    def _close(self, bursts: List[Burst], start: int, end: int,
               peak: float) -> None:
        if end - start >= self.min_duration_ns:
            bursts.append(Burst(start, end, peak))

    @staticmethod
    def recall(detected: Sequence[Burst], truth: Sequence[Burst],
               slack_ns: int = 0) -> float:
        """Fraction of ground-truth bursts that overlap a detection."""
        if not truth:
            return 1.0
        hits = sum(1 for true_burst in truth
                   if any(true_burst.overlaps(d, slack_ns) for d in detected))
        return hits / len(truth)


class BurstyTrafficGenerator:
    """ON/OFF cross traffic: short line-rate bursts, quiet gaps.

    During ON periods the flow sends at ``burst_rate_bps`` (above the
    bottleneck drain rate, so the queue ramps); during OFF periods it is
    silent and the queue drains — the classic micro-burst shape.  ON/OFF
    durations are exponential around the configured means, driven by a
    seeded RNG for reproducibility.  The exact ON windows are recorded so
    experiments have ground truth for when bursts were offered.
    """

    def __init__(self, flow: Flow, burst_rate_bps: int,
                 on_mean_ns: int, off_mean_ns: int,
                 rng: random.Random) -> None:
        self.flow = flow
        self.burst_rate_bps = burst_rate_bps
        self.on_mean_ns = on_mean_ns
        self.off_mean_ns = off_mean_ns
        self._rng = rng
        self._sim = flow.src.sim
        self._timer = OneShotTimer(self._sim, self._toggle)
        self._on = False
        self._running = False
        self.on_windows: List[Burst] = []
        self._window_start = 0

    def start(self) -> None:
        """Start in the OFF state; first burst after one OFF period."""
        self._running = True
        self.flow.set_rate(0)
        self.flow.start()
        self._timer.start(self._duration(self.off_mean_ns))

    def stop(self) -> None:
        """Stop generating (closes an open ON window)."""
        self._running = False
        self._timer.cancel()
        if self._on:
            self._end_on_window()
        self.flow.stop()

    def _duration(self, mean_ns: int) -> int:
        return max(1, round(self._rng.expovariate(1.0 / mean_ns)))

    def _toggle(self) -> None:
        if not self._running:
            return
        if self._on:
            self._end_on_window()
            self.flow.set_rate(0)
            self._timer.start(self._duration(self.off_mean_ns))
        else:
            self._on = True
            self._window_start = self._sim.now_ns
            self.flow.set_rate(self.burst_rate_bps)
            self._timer.start(self._duration(self.on_mean_ns))

    def _end_on_window(self) -> None:
        self._on = False
        self.on_windows.append(Burst(self._window_start, self._sim.now_ns,
                                     peak_bytes=0.0))


class _ControlPort:
    """Minimal egress-port stand-in for monitor-injected TPPs."""

    index = 0
    queue = None


class HeavyHitterMonitor:
    """Per-flow heavy-hitter detection at one switch.

    The queue-occupancy pipeline above answers *when* a micro-burst
    happened; this monitor answers *which flows* filled the queue.  It
    owns a :class:`~repro.telemetry.layout.HeavyHitterLayout` block of
    the switch's scratch SRAM (registered through the memory map,
    allocated through the MMU so TPP007 protection applies), generates
    one certified update TPP per flow key on first sight, registers each
    with :meth:`~repro.core.tcpu.TCPU.trust` so the fleet race table
    models the shared counters, and decodes estimates through probe
    TPPs plus :class:`~repro.analysis.sketch.HeavyHitterDecoder`.

    ``race_mode`` defaults to ``"warn"``: updaters for keys whose
    counters collide under the layout's hashes carry a genuine TPP020
    write-write race (count-min *depends* on colliding increments —
    estimates stay overestimate-only either way), so the monitor records
    the diagnostics rather than refusing the updater.  Pass
    ``"enforce"`` to admit only provably disjoint updater sets.
    """

    def __init__(self, mmu, layout, task_id: int = 1,
                 race_mode: str = "warn",
                 make_ctx=None) -> None:
        from repro.asic.metadata import PacketMetadata
        from repro.core.mmu import ExecutionContext
        from repro.core.tcpu import TCPU

        self.mmu = mmu
        self.layout = layout
        self.task_id = task_id
        layout.register(mmu.memory_map)
        self.region = layout.allocate(mmu, task_id)
        # 2*depth + 1 instructions per update; probes chunk to <= 5.
        self.tcpu = TCPU(mmu, max_instructions=max(5, 2 * layout.depth + 1),
                         name="hh-monitor", race_mode=race_mode)
        if make_ctx is None:
            def make_ctx():
                return ExecutionContext(metadata=PacketMetadata(),
                                        egress_port=_ControlPort())
        self._make_ctx = make_ctx
        self._updates: Dict[int, object] = {}
        self.packets_observed = 0
        self.updaters_refused = 0

    def updater_for(self, key: int):
        """The certified update program for ``key`` (cached; generated
        and admitted to the race table on first use)."""
        from repro.telemetry.programs import build_heavy_hitter_update
        update = self._updates.get(key)
        if update is None:
            update = build_heavy_hitter_update(
                self.layout, key, task_id=self.task_id,
                memory_map=self.mmu.memory_map)
            if not self.tcpu.trust(update.certificate):
                self.updaters_refused += 1
            self._updates[key] = update
        return update

    def observe(self, key: int, packets: int = 1) -> None:
        """Account ``packets`` arrivals of flow ``key`` (one update TPP
        executed per packet, exactly as in-band deployment would)."""
        update = self.updater_for(key)
        for _ in range(packets):
            report = self.tcpu.execute(update.build(), self._make_ctx())
            if not report.ok:
                raise RuntimeError(
                    f"sketch update faulted: {report.fault.name}")
            self.packets_observed += 1

    def snapshot(self) -> Dict[int, int]:
        """Probe-TPP snapshot of the whole sketch block."""
        from repro.telemetry.programs import read_sketch
        return read_sketch(self.tcpu, list(self.layout.words()),
                           self._make_ctx, task_id=self.task_id,
                           memory_map=self.mmu.memory_map)

    def report(self, k: int = 0):
        """Ranked heavy hitters with (ε, δ) error bounds."""
        from repro.analysis.sketch import HeavyHitterDecoder
        decoder = HeavyHitterDecoder(self.layout)
        return decoder.report(self.snapshot(), k)

    @property
    def race_conflicts(self) -> int:
        """TPP020-TPP023 diagnostics recorded while admitting updaters
        (non-empty whenever observed keys share counter cells)."""
        return len(self.tcpu.race_conflicts)
