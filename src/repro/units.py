"""Unit conversions used throughout the simulator.

The simulated clock is an **integer number of nanoseconds**.  Floating-point
time is a classic source of event-ordering bugs in network simulators (two
events that should be simultaneous land a few ULPs apart), so every duration
in the event engine, links, and queues is an ``int`` of nanoseconds, and
every rate is bits per second.  These helpers convert at the boundary.
"""

from __future__ import annotations

# One second, millisecond, microsecond expressed in the simulator clock unit.
NANOSECONDS = 1
MICROSECONDS = 1_000
MILLISECONDS = 1_000_000
SECONDS = 1_000_000_000

# Common data rates in bits per second.
KILOBITS_PER_SEC = 1_000
MEGABITS_PER_SEC = 1_000_000
GIGABITS_PER_SEC = 1_000_000_000


def seconds(value: float) -> int:
    """Convert seconds to integer nanoseconds (rounded to nearest)."""
    return round(value * SECONDS)


def milliseconds(value: float) -> int:
    """Convert milliseconds to integer nanoseconds (rounded to nearest)."""
    return round(value * MILLISECONDS)


def microseconds(value: float) -> int:
    """Convert microseconds to integer nanoseconds (rounded to nearest)."""
    return round(value * MICROSECONDS)


def to_seconds(time_ns: int) -> float:
    """Convert integer nanoseconds back to (float) seconds for reporting."""
    return time_ns / SECONDS


def transmission_time_ns(size_bytes: int, rate_bps: int) -> int:
    """Time to serialize ``size_bytes`` onto a link of ``rate_bps``.

    Rounded up so a packet never finishes transmitting early; at 10 Gb/s a
    64-byte frame takes ceil(512 / 10) = 52 ns.
    """
    if rate_bps <= 0:
        raise ValueError(f"link rate must be positive, got {rate_bps}")
    bits = size_bytes * 8
    return -(-bits * SECONDS // rate_bps)  # ceiling division


def bytes_per_second(rate_bps: int) -> float:
    """Express a bit rate as bytes per second."""
    return rate_bps / 8.0
