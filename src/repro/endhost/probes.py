"""Periodic TPP probing.

RCP*'s rate controller "periodically (using the flow's packets, or using
additional probe packets) queries and modifies network state" (§2.2).  This
module is the *additional probe packets* path: a timer that fires a program
at a fixed (optionally jittered) interval and routes each echoed result to
a callback.
"""

from __future__ import annotations

import random
from typing import Callable, Optional

from repro.core.assembler import AssembledProgram
from repro.endhost.client import TPPEndpoint, TPPResultView
from repro.sim.timers import PeriodicTimer


class PeriodicProber:
    """Sends a TPP program every ``interval_ns``."""

    def __init__(self, endpoint: TPPEndpoint, program: AssembledProgram,
                 interval_ns: int,
                 on_result: Callable[[TPPResultView], None],
                 dst_mac: Optional[int] = None, task_id: int = 0,
                 jitter_fraction: float = 0.0,
                 rng: Optional[random.Random] = None) -> None:
        self.endpoint = endpoint
        self.program = program
        self.interval_ns = interval_ns
        self.on_result = on_result
        self.dst_mac = dst_mac
        self.task_id = task_id
        self.jitter_fraction = jitter_fraction
        self._rng = rng
        self._timer = PeriodicTimer(endpoint.host.sim, interval_ns,
                                    self._fire)
        self.probes_sent = 0
        self.results_received = 0

    def start(self, first_delay_ns: Optional[int] = None) -> None:
        """Begin probing; the first probe defaults to one jittered
        interval from now (jitter decorrelates concurrent flows)."""
        if first_delay_ns is None:
            first_delay_ns = self._jittered_interval()
        self._timer.start(first_delay_ns)

    def stop(self) -> None:
        """Stop probing; in-flight probes may still return."""
        self._timer.stop()

    def _fire(self) -> None:
        # Re-jitter each period by adjusting the next firing.
        if self.jitter_fraction > 0.0:
            self._timer.start(self._jittered_interval())
        self.probes_sent += 1
        self.endpoint.send(self.program, dst_mac=self.dst_mac,
                           task_id=self.task_id, on_response=self._on_result)

    def _jittered_interval(self) -> int:
        if self.jitter_fraction <= 0.0 or self._rng is None:
            return self.interval_ns
        spread = self.jitter_fraction * self.interval_ns
        return max(1, round(self.interval_ns
                            + self._rng.uniform(-spread, spread)))

    def _on_result(self, result: TPPResultView) -> None:
        self.results_received += 1
        self.on_result(result)
