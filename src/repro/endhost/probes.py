"""Periodic TPP probing.

RCP*'s rate controller "periodically (using the flow's packets, or using
additional probe packets) queries and modifies network state" (§2.2).  This
module is the *additional probe packets* path: a timer that fires a program
at a fixed (optionally jittered) interval and routes each echoed result to
a callback.

On lossy networks the prober degrades gracefully instead of leaking state:
every probe carries a deadline (default: ``timeout_intervals`` probe
periods), the number of outstanding probes is capped (a blackhole cannot
exhaust the endpoint's sequence window), and an EWMA over
answered-vs-expired probes gives the caller a live loss-rate estimate.
"""

from __future__ import annotations

import random
from typing import Callable, Optional

from repro.core.assembler import AssembledProgram
from repro.endhost.client import (
    DEFAULT_RTT_MULTIPLIER,
    ProbeRequest,
    RetryPolicy,
    TPPEndpoint,
    TPPResultView,
)
from repro.sim.timers import PeriodicTimer

#: Weight of each completed probe in the loss-rate EWMA.
LOSS_EWMA_ALPHA = 0.1


class PeriodicProber:
    """Sends a TPP program every ``interval_ns``.

    ``timeout_intervals`` scales the per-probe deadline off the probing
    period (0 disables deadlines — legacy behaviour, unbounded pending
    state under loss).  The default is deliberately loose: before the
    endpoint has an RTT estimate the floor is all that separates "lost"
    from "stuck behind a queue", and the ``max_outstanding`` cap (not
    the deadline) is what bounds in-flight state in the meantime.
    ``retry_policy`` overrides the derived policy entirely.
    ``max_outstanding`` caps in-flight probes; a probe whose turn
    arrives at the cap is suppressed and counted, not queued.
    """

    def __init__(self, endpoint: TPPEndpoint, program: AssembledProgram,
                 interval_ns: int,
                 on_result: Callable[[TPPResultView], None],
                 dst_mac: Optional[int] = None, task_id: int = 0,
                 jitter_fraction: float = 0.0,
                 rng: Optional[random.Random] = None,
                 timeout_intervals: float = 20.0,
                 retry_policy: Optional[RetryPolicy] = None,
                 max_outstanding: int = 16,
                 on_timeout: Optional[Callable[[ProbeRequest], None]] = None,
                 ) -> None:
        if max_outstanding < 1:
            raise ValueError(
                f"max_outstanding must be >= 1: {max_outstanding}")
        # Fail construction, not every tick: an endpoint that would
        # reject this program (enforce-mode verification, or a hop
        # budget it cannot satisfy) would do so on each _fire() anyway,
        # so surface the verifier's diagnostics where the experiment is
        # being built.  budget() also applies auto-sizing once, so the
        # prober fires the correctly-sized program from the start.
        if hasattr(endpoint, "budget"):
            program = endpoint.budget(program)
        if getattr(endpoint, "verify_mode", "off") == "enforce":
            endpoint.admit(program).raise_on_error()
        self.endpoint = endpoint
        self.program = program
        self.interval_ns = interval_ns
        self.on_result = on_result
        self.dst_mac = dst_mac
        self.task_id = task_id
        self.jitter_fraction = jitter_fraction
        if rng is None:
            # A named stream from the simulator's family: jitter is
            # deterministic per seed and never silently disabled just
            # because the caller forgot to thread an RNG through.
            rng = endpoint.host.sim.rng.stream(
                f"prober/{endpoint.host.name}/task{task_id}")
        self._rng = rng
        if retry_policy is None and timeout_intervals > 0:
            # Adaptive deadline: ``timeout_intervals`` periods is only a
            # floor; once the endpoint has an echo-RTT estimate the
            # deadline tracks it, so congestion delay on the probed path
            # is not misread as loss.
            retry_policy = RetryPolicy(
                timeout_ns=max(1, round(timeout_intervals * interval_ns)),
                rtt_multiplier=DEFAULT_RTT_MULTIPLIER)
        self.retry_policy = retry_policy
        self.max_outstanding = max_outstanding
        self.on_timeout = on_timeout
        self._timer = PeriodicTimer(endpoint.host.sim, interval_ns,
                                    self._fire)
        self.probes_sent = 0
        self.results_received = 0
        self.probes_timed_out = 0
        self.probes_suppressed = 0
        self.outstanding = 0
        #: EWMA of probe loss (1 = expired, 0 = answered); only meaningful
        #: once deadlines are enabled and a few probes have completed.
        self.loss_rate_estimate = 0.0
        self._completed_probes = 0

    def start(self, first_delay_ns: Optional[int] = None) -> None:
        """Begin probing; the first probe defaults to one jittered
        interval from now (jitter decorrelates concurrent flows)."""
        if first_delay_ns is None:
            first_delay_ns = self._jittered_interval()
        self._timer.start(first_delay_ns)

    def stop(self) -> None:
        """Stop probing; in-flight probes may still return."""
        self._timer.stop()

    def _fire(self) -> None:
        # Re-jitter each period by adjusting the next firing.
        if self.jitter_fraction > 0.0:
            self._timer.start(self._jittered_interval())
        if self.outstanding >= self.max_outstanding:
            self.probes_suppressed += 1
            return
        self.probes_sent += 1
        self.outstanding += 1
        self.endpoint.send(self.program, dst_mac=self.dst_mac,
                           task_id=self.task_id, on_response=self._on_result,
                           on_timeout=self._on_probe_timeout,
                           retry_policy=self.retry_policy)

    def _jittered_interval(self) -> int:
        if self.jitter_fraction <= 0.0:
            return self.interval_ns
        spread = self.jitter_fraction * self.interval_ns
        return max(1, round(self.interval_ns
                            + self._rng.uniform(-spread, spread)))

    def _fold_loss(self, lost: float) -> None:
        self._completed_probes += 1
        if self._completed_probes == 1:
            self.loss_rate_estimate = lost
        else:
            self.loss_rate_estimate += LOSS_EWMA_ALPHA * (
                lost - self.loss_rate_estimate)

    def _on_result(self, result: TPPResultView) -> None:
        self.results_received += 1
        self.outstanding = max(0, self.outstanding - 1)
        self._fold_loss(0.0)
        self.on_result(result)

    def _on_probe_timeout(self, record: ProbeRequest) -> None:
        self.probes_timed_out += 1
        self.outstanding = max(0, self.outstanding - 1)
        self._fold_loss(1.0)
        if self.on_timeout is not None:
            self.on_timeout(record)
