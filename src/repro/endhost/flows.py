"""Paced UDP flows with receiver-side accounting.

A :class:`Flow` is the unit every congestion-control experiment works in:
a paced sender emitting fixed-size datagrams from one host to a UDP port on
another, with a :class:`FlowSink` at the receiver recording arrivals so
goodput and convergence can be measured.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

from repro.endhost.rate_limiter import PacedSender
from repro.net.host import Host
from repro.net.packet import (
    ETHERTYPE_IPV4,
    Datagram,
    EthernetFrame,
    RawPayload,
)

#: Customization hook: builds the frame for one emission given the flow
#: and the target wire size.  The default builds a plain IPv4/UDP frame;
#: RCP attaches its congestion header here and ndb wraps the datagram in
#: a trace TPP.
FrameFactory = Callable[["Flow", int], EthernetFrame]


class FlowSink:
    """Receiver side: counts bytes per flow arriving on a UDP port."""

    def __init__(self, host: Host, udp_port: int) -> None:
        self.host = host
        self.udp_port = udp_port
        self.bytes_received = 0
        self.packets_received = 0
        self.arrivals: List[Tuple[int, int]] = []  # (time_ns, bytes)
        host.on_udp_port(udp_port, self._on_datagram)

    def _on_datagram(self, datagram: Datagram, frame: EthernetFrame) -> None:
        size = datagram.size_bytes
        self.bytes_received += size
        self.packets_received += 1
        self.arrivals.append((self.host.sim.now_ns, size))

    def goodput_bps(self, window_start_ns: int, window_end_ns: int) -> float:
        """Average received rate over a time window."""
        if window_end_ns <= window_start_ns:
            return 0.0
        window_bytes = sum(size for time_ns, size in self.arrivals
                           if window_start_ns <= time_ns < window_end_ns)
        return window_bytes * 8 / ((window_end_ns - window_start_ns) / 1e9)


class Flow:
    """Sender side: a paced stream of datagrams to a sink."""

    def __init__(self, src: Host, dst: Host, dst_mac: int, udp_port: int,
                 rate_bps: int, packet_bytes: int = 1000,
                 src_port: int = 40000,
                 frame_factory: Optional[FrameFactory] = None) -> None:
        self.src = src
        self.dst = dst
        self.dst_mac = dst_mac
        self.udp_port = udp_port
        self.src_port = src_port
        self.packet_bytes = packet_bytes
        self.frame_factory = frame_factory
        self.sender = PacedSender(src.sim, rate_bps, packet_bytes,
                                  self._emit)
        self.rate_history: List[Tuple[int, int]] = []  # (time_ns, rate_bps)

    @property
    def rate_bps(self) -> int:
        """Current pacing rate."""
        return self.sender.rate_bps

    def set_rate(self, rate_bps: int) -> None:
        """Adjust the pacing rate (recorded for later analysis)."""
        self.sender.set_rate(rate_bps)
        self.rate_history.append((self.src.sim.now_ns, self.sender.rate_bps))

    def start(self) -> None:
        """Start sending."""
        self.rate_history.append((self.src.sim.now_ns, self.sender.rate_bps))
        self.sender.start()

    def stop(self) -> None:
        """Stop sending."""
        self.sender.stop()

    @property
    def packets_sent(self) -> int:
        return self.sender.packets_sent

    @property
    def bytes_sent(self) -> int:
        return self.sender.bytes_sent

    def make_datagram(self, packet_bytes: int,
                      shim_bytes: int = 0) -> Datagram:
        """Build one data datagram whose enclosing frame will have the
        target wire size (``shim_bytes`` accounts for extra headers the
        frame factory will add, e.g. an RCP shim or a TPP section)."""
        overhead = 14 + 4 + 20 + 8 + shim_bytes  # eth + fcs + ipv4 + udp
        payload_bytes = max(0, packet_bytes - overhead)
        return Datagram(src_ip=self.src.ip, dst_ip=self.dst.ip,
                        src_port=self.src_port, dst_port=self.udp_port,
                        payload=RawPayload(payload_bytes))

    def _emit(self, packet_bytes: int) -> None:
        if self.frame_factory is not None:
            frame = self.frame_factory(self, packet_bytes)
        else:
            frame = EthernetFrame(dst=self.dst_mac, src=self.src.mac,
                                  ethertype=ETHERTYPE_IPV4,
                                  payload=self.make_datagram(packet_bytes))
        self.src.send_frame(frame)
