"""End-host library: inject TPPs, interpret results, pace flows.

The paper's refactoring puts all intelligence at end-hosts; this package is
that end-host runtime:

- :class:`~repro.endhost.client.TPPEndpoint` — per-host TPP plumbing: sends
  probe TPPs, echoes fully-executed TPPs back to their sender (the receiver
  behaviour of §2.2 phase 1), and delivers TPP-encapsulated data packets.
- :class:`~repro.endhost.client.TPPResultView` — decodes the per-hop
  samples a returned TPP collected.
- :class:`~repro.endhost.probes.PeriodicProber` — fires a program every
  interval and hands results to a callback.
- :class:`~repro.endhost.rate_limiter.TokenBucket` /
  :class:`~repro.endhost.rate_limiter.PacedSender` — the per-flow rate
  limiter RCP* requires.
- :class:`~repro.endhost.flows.Flow` / :class:`~repro.endhost.flows.FlowSink`
  — a paced UDP flow with receiver-side goodput accounting.
"""

from repro.endhost.client import (
    ProbeRequest,
    ProbeWindowFull,
    RetryPolicy,
    TPPEndpoint,
    TPPResultView,
)
from repro.endhost.probes import PeriodicProber
from repro.endhost.rate_limiter import PacedSender, TokenBucket
from repro.endhost.flows import Flow, FlowSink

__all__ = [
    "TPPEndpoint",
    "TPPResultView",
    "ProbeRequest",
    "ProbeWindowFull",
    "RetryPolicy",
    "PeriodicProber",
    "PacedSender",
    "TokenBucket",
    "Flow",
    "FlowSink",
]
