"""TPP send/receive plumbing for one host.

One :class:`TPPEndpoint` is attached per host (it claims the TPP ethertype
handler).  It plays both roles of the paper's end-host protocol:

- **sender**: :meth:`send` instantiates a program into a fresh TPP section,
  stamps a sequence number, and records a callback; when the fully-executed
  TPP is echoed back, the callback receives a :class:`TPPResultView`.
- **receiver**: a TPP that arrives *not yet done* has finished executing on
  every hop of the forward path.  "The receiver simply echos a fully
  executed TPP back to the sender" (§2.2) — the endpoint marks it done (so
  switches on the reverse path skip it) and sends it back.  TPPs that
  encapsulate a data payload are instead delivered locally: their payload
  goes to the host's normal UDP dispatch and the TPP itself is offered to
  registered taps (how the ndb collector sees its per-packet traces).
"""

from __future__ import annotations

import itertools
from typing import Callable, Dict, List, Optional

from repro.core.assembler import AssembledProgram
from repro.core.exceptions import FaultCode
from repro.core.tpp import TPPSection
from repro.net.host import Host
from repro.net.packet import ETHERTYPE_TPP, Datagram, EthernetFrame

ResponseCallback = Callable[["TPPResultView"], None]
TPPTap = Callable[[TPPSection, EthernetFrame], None]


class TPPResultView:
    """Decoded view of a TPP that came back from the network."""

    def __init__(self, tpp: TPPSection, time_ns: int = 0) -> None:
        self.tpp = tpp
        self.time_ns = time_ns

    @property
    def seq(self) -> int:
        """Sequence number the sender stamped on the probe."""
        return self.tpp.seq

    @property
    def fault(self) -> FaultCode:
        """Fault recorded during execution, if any."""
        return self.tpp.fault

    @property
    def ok(self) -> bool:
        """True when the TPP executed without faulting anywhere."""
        return self.tpp.fault == FaultCode.NONE

    def hops(self) -> int:
        """Number of switches that executed the TPP."""
        return self.tpp.hops_executed()

    def per_hop_words(self) -> List[List[int]]:
        """Collected samples as one list of words per hop.

        "The end-host knows exactly how to interpret values in the packet"
        (§2.1) — this is that interpretation, driven by the per-hop
        footprint the assembler recorded in the header.
        """
        perhop = self.tpp.perhop_len_bytes
        word = self.tpp.word_size
        if perhop == 0:
            return []
        words_per_hop = perhop // word
        # Clamp to what the packet can actually hold: a malformed or
        # truncated TPP must not crash its reader.
        max_hops = len(self.tpp.memory) // perhop
        result: List[List[int]] = []
        for hop in range(min(self.hops(), max_hops)):
            base = hop * perhop
            result.append([self.tpp.read_word(base + i * word)
                           for i in range(words_per_hop)])
        return result

    def hop_words(self, hop: int) -> List[int]:
        """Samples collected at one hop."""
        return self.per_hop_words()[hop]

    def stack_words(self) -> List[int]:
        """All words up to the stack pointer (stack-addressed TPPs)."""
        word = self.tpp.word_size
        limit = min(self.tpp.sp,
                    len(self.tpp.memory) - len(self.tpp.memory) % word)
        return [self.tpp.read_word(i) for i in range(0, limit, word)]

    def word(self, index: int) -> int:
        """One absolute packet-memory word."""
        return self.tpp.read_word(index * self.tpp.word_size)


class TPPEndpoint:
    """Per-host TPP sender, echo responder, and demultiplexer."""

    def __init__(self, host: Host, default_dst_mac: Optional[int] = None,
                 echo_probes: bool = True) -> None:
        self.host = host
        self.default_dst_mac = default_dst_mac
        self.echo_probes = echo_probes
        self._seq = itertools.count(0)
        self._pending: Dict[int, ResponseCallback] = {}
        self._taps: List[TPPTap] = []
        #: Task ids whose *payload-carrying* TPPs get a trimmed echo: the
        #: data is delivered locally and the executed TPP section alone
        #: (no payload) is sent back to the source — how piggybacked
        #: probes ("using the flow's packets", §2.2) report home without
        #: re-transmitting the data.
        self._trimmed_echo_tasks: set = set()
        self.probes_sent = 0
        self.responses_received = 0
        self.tpps_echoed = 0
        self.trimmed_echoes = 0
        self.payloads_delivered = 0
        host.on_ethertype(ETHERTYPE_TPP, self._on_tpp_frame)

    # ------------------------------------------------------------------ #
    # Sending
    # ------------------------------------------------------------------ #

    def send(self, program: AssembledProgram, dst_mac: Optional[int] = None,
             payload=None, task_id: int = 0,
             on_response: Optional[ResponseCallback] = None) -> int:
        """Instantiate and transmit a program; returns the sequence number.

        ``on_response`` fires when the echoed, fully-executed TPP returns.
        """
        if dst_mac is None:
            dst_mac = self.default_dst_mac
        if dst_mac is None:
            raise ValueError("no destination MAC for TPP probe")
        seq = next(self._seq) & 0xFF
        tpp = program.build(payload=payload, task_id=task_id, seq=seq)
        if on_response is not None:
            self._pending[seq] = on_response
        frame = EthernetFrame(dst=dst_mac, src=self.host.mac,
                              ethertype=ETHERTYPE_TPP, payload=tpp)
        self.probes_sent += 1
        self.host.send_frame(frame)
        return seq

    def send_tpp(self, tpp: TPPSection, dst_mac: int) -> None:
        """Transmit an already-built TPP section (used by ndb's tagger)."""
        frame = EthernetFrame(dst=dst_mac, src=self.host.mac,
                              ethertype=ETHERTYPE_TPP, payload=tpp)
        self.host.send_frame(frame)

    def wrap(self, program: AssembledProgram, payload,
             task_id: int = 0,
             on_response: Optional[ResponseCallback] = None) -> TPPSection:
        """Build a data-carrying TPP (a piggybacked probe) and register
        its response callback; the caller transmits the frame.

        The receiving endpoint must have trimmed echoes enabled for this
        task id (see :meth:`enable_trimmed_echo`), otherwise no response
        comes back.
        """
        seq = next(self._seq) & 0xFF
        tpp = program.build(payload=payload, task_id=task_id, seq=seq)
        if on_response is not None:
            self._pending[seq] = on_response
        return tpp

    def enable_trimmed_echo(self, task_id: int) -> None:
        """Echo executed TPPs of this task back (payload stripped) even
        when they carry data."""
        self._trimmed_echo_tasks.add(task_id)

    # ------------------------------------------------------------------ #
    # Receiving
    # ------------------------------------------------------------------ #

    def add_tap(self, tap: TPPTap) -> None:
        """Observe every executed TPP that terminates at this host."""
        self._taps.append(tap)

    def _on_tpp_frame(self, frame: EthernetFrame) -> None:
        tpp = frame.payload
        if not isinstance(tpp, TPPSection):
            return
        if tpp.done:
            self._on_response(tpp)
            return
        for tap in self._taps:
            tap(tpp, frame)
        if isinstance(tpp.payload, Datagram):
            self._deliver_payload(tpp.payload, frame)
            if tpp.task_id in self._trimmed_echo_tasks:
                trimmed = tpp.copy()
                trimmed.payload = None
                self.trimmed_echoes += 1
                self._echo(trimmed, frame)
        elif self.echo_probes:
            self._echo(tpp, frame)

    def _on_response(self, tpp: TPPSection) -> None:
        self.responses_received += 1
        callback = self._pending.pop(tpp.seq, None)
        if callback is not None:
            callback(TPPResultView(tpp, self.host.sim.now_ns))

    def _echo(self, tpp: TPPSection, frame: EthernetFrame) -> None:
        tpp.mark_done()
        self.tpps_echoed += 1
        echo = EthernetFrame(dst=frame.src, src=self.host.mac,
                             ethertype=ETHERTYPE_TPP, payload=tpp)
        self.host.send_frame(echo)

    def _deliver_payload(self, datagram: Datagram,
                         frame: EthernetFrame) -> None:
        self.payloads_delivered += 1
        self.host.deliver_datagram(datagram, frame)
