"""TPP send/receive plumbing for one host.

One :class:`TPPEndpoint` is attached per host (it claims the TPP ethertype
handler).  It plays both roles of the paper's end-host protocol:

- **sender**: :meth:`send` instantiates a program into a fresh TPP section,
  stamps a sequence number, and records a callback; when the fully-executed
  TPP is echoed back, the callback receives a :class:`TPPResultView`.
- **receiver**: a TPP that arrives *not yet done* has finished executing on
  every hop of the forward path.  "The receiver simply echos a fully
  executed TPP back to the sender" (§2.2) — the endpoint marks it done (so
  switches on the reverse path skip it) and sends it back.  TPPs that
  encapsulate a data payload are instead delivered locally: their payload
  goes to the host's normal UDP dispatch and the TPP itself is offered to
  registered taps (how the ndb collector sees its per-packet traces).

Reliability
-----------

The paper assumes probes come back; lossy networks do not oblige, and the
SIGCOMM'14 follow-up makes end-host agents responsible for retransmitting
lost TPPs.  The endpoint therefore keeps one :class:`ProbeRequest` record
per outstanding probe:

- sequence numbers are allocated **collision-free** from the 8-bit wire
  space — a seq whose slot is still pending is skipped, so a late echo can
  never fire a newer probe's callback with the wrong data;
- a per-request deadline (from a :class:`RetryPolicy`) bounds the pending
  table: on expiry the probe is retransmitted with exponential backoff or,
  out of attempts, surrendered to its ``on_timeout`` callback;
- echoes are matched against the *recorded request* (task id and expected
  responder), so misrouted or reflected echoes from other hosts are
  counted as orphans instead of cross-wiring state;
- late and duplicate echoes (a retransmission racing its original, a
  duplicating link) are deduplicated and counted, never double-delivered.
"""

from __future__ import annotations

import dataclasses
import itertools
import random
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.core.assembler import AssembledProgram
from repro.core.exceptions import FaultCode
from repro.core.memory_map import MemoryMap
from repro.core.tcpu import DEFAULT_MAX_INSTRUCTIONS
from repro.core.tpp import TPPSection
from repro.core.verifier import (
    Diagnostic,
    VerificationError,
    VerificationResult,
    verify_program,
)
from repro.errors import ReproError
from repro.net.host import Host
from repro.net.packet import ETHERTYPE_TPP, Datagram, EthernetFrame
from repro.sim.timers import OneShotTimer

ResponseCallback = Callable[["TPPResultView"], None]
TimeoutCallback = Callable[["ProbeRequest"], None]
TPPTap = Callable[[TPPSection, EthernetFrame], None]

#: Admission-cache key: program fingerprint + memory geometry.
AdmissionKey = Tuple[bytes, int, int, Optional[int]]
#: Completed-request memo: (outcome, first_sent_ns, attempts).
CompletedEntry = Tuple[str, int, int]

#: The TPP header carries an 8-bit sequence number (see
#: :data:`repro.core.tpp._HEADER_STRUCT`); this is the whole wire space.
SEQ_SPACE = 256

#: How many completed (answered or timed-out) requests to remember for
#: classifying stragglers as duplicate/late rather than orphan.
_COMPLETED_MEMORY = 2 * SEQ_SPACE

#: Bounded memo of per-program verification verdicts (an endpoint sends
#: the same few programs over and over; re-verifying per probe would put
#: the whole static analysis on the send hot path).
_ADMISSION_CACHE_SIZE = 64

#: Endpoint admission modes (the `Millions of Little Minions` end-host
#: agent responsibility): ``off`` skips verification, ``warn`` verifies
#: and counts but still sends, ``enforce`` refuses to inject a program
#: with error-severity diagnostics.
VERIFY_MODES = ("off", "warn", "enforce")

#: How an endpoint with a configured ``hop_budget`` reconciles it with
#: the verifier's measured memory hop capacity (the TPP009 scan):
#: ``auto`` grows a too-small program's packet memory to fit the budget
#: when that is provably sound, ``reject`` refuses the send outright.
#: Either way a probe that *would* have faulted mid-path at hop N
#: (``STACK_OVERFLOW`` / ``MEMORY_BOUNDS``) is stopped at the endpoint.
HOP_BUDGET_MODES = ("auto", "reject")

#: Smoothing for the endpoint's echo-RTT estimate (TCP's srtt, but a
#: faster gain: probes fire every few ms, so the estimate should track
#: queue build-up within a handful of samples).
RTT_EWMA_ALPHA = 0.25

#: Default ``RetryPolicy.rtt_multiplier`` for policies derived by the
#: prober and the RCP* controller.  Generous on purpose: a deadline
#: exists to catch genuine loss and bound the pending table, not to race
#: queueing delay — and without variance tracking the headroom has to
#: absorb RTT swinging several-fold as queues fill and drain.
DEFAULT_RTT_MULTIPLIER = 6.0


class ProbeWindowFull(ReproError):
    """All 256 wire sequence numbers have a probe in flight.

    Senders that can see this many probes outstanding should cap their
    emission (as :class:`~repro.endhost.probes.PeriodicProber` does) or
    configure a :class:`RetryPolicy` so stale entries expire.
    """


@dataclass(frozen=True)
class RetryPolicy:
    """Deadline/retransmission policy for one probe.

    ``max_attempts`` counts transmissions in total: 1 means a bare
    deadline with no retransmission.  The timeout for attempt *n* is
    ``timeout_ns * backoff**(n-1)``, clamped to ``max_timeout_ns`` and
    spread by ``±jitter_fraction`` (to decorrelate retry storms).

    ``rtt_multiplier`` makes the deadline *adaptive*: a nonzero value
    raises each attempt's timeout to at least ``rtt_multiplier`` times
    the endpoint's smoothed echo RTT.  Probes share queues with the
    traffic they monitor, so congestion stretches their RTT by orders of
    magnitude — a static deadline would misread that delay as loss and
    (worse) feed phantom-loss signals to the very control loop trying to
    drain the queue.  ``timeout_ns`` then acts as the floor used until
    an RTT estimate exists.
    """

    timeout_ns: int
    max_attempts: int = 1
    backoff: float = 2.0
    max_timeout_ns: Optional[int] = None
    jitter_fraction: float = 0.0
    rtt_multiplier: float = 0.0

    def __post_init__(self) -> None:
        if self.timeout_ns <= 0:
            raise ValueError(f"timeout must be positive: {self.timeout_ns}")
        if self.max_attempts < 1:
            raise ValueError(
                f"max_attempts must be >= 1: {self.max_attempts}")
        if self.backoff < 1.0:
            raise ValueError(f"backoff must be >= 1: {self.backoff}")
        if not 0.0 <= self.jitter_fraction < 1.0:
            raise ValueError(
                f"jitter_fraction must be in [0, 1): {self.jitter_fraction}")
        if self.rtt_multiplier < 0.0:
            raise ValueError(
                f"rtt_multiplier must be >= 0: {self.rtt_multiplier}")

    def timeout_for(self, attempt: int,
                    rng: Optional[random.Random] = None,
                    rtt_ewma_ns: float = 0.0) -> int:
        """Deadline (ns) to arm before transmission number ``attempt``."""
        base = float(self.timeout_ns)
        if self.rtt_multiplier and rtt_ewma_ns:
            base = max(base, self.rtt_multiplier * rtt_ewma_ns)
        timeout = base * self.backoff ** (attempt - 1)
        if self.max_timeout_ns is not None:
            timeout = min(timeout, self.max_timeout_ns)
        if self.jitter_fraction and rng is not None:
            timeout *= 1.0 + rng.uniform(-self.jitter_fraction,
                                         self.jitter_fraction)
        return max(1, round(timeout))


@dataclass
class ProbeRequest:
    """One outstanding probe: identity, callbacks, and retry state."""

    probe_id: int                       #: endpoint-unique, never reused
    seq: int                            #: 8-bit wire slot, unique in flight
    task_id: int
    responder_mac: Optional[int]        #: expected echo source (if known)
    program: Optional[AssembledProgram]
    payload: object = None
    on_response: Optional[ResponseCallback] = None
    on_timeout: Optional[TimeoutCallback] = None
    policy: Optional[RetryPolicy] = None
    attempts: int = 1
    first_sent_ns: int = 0
    timer: Optional[OneShotTimer] = field(default=None, repr=False)


class TPPResultView:
    """Decoded view of a TPP that came back from the network."""

    def __init__(self, tpp: TPPSection, time_ns: int = 0,
                 rtt_ns: int = 0) -> None:
        self.tpp = tpp
        self.time_ns = time_ns
        #: Round-trip time of the probe (0 when the endpoint had no
        #: request record to measure against).
        self.rtt_ns = rtt_ns

    @property
    def seq(self) -> int:
        """Sequence number the sender stamped on the probe."""
        return self.tpp.seq

    @property
    def fault(self) -> FaultCode:
        """Fault recorded during execution, if any."""
        return self.tpp.fault

    @property
    def ok(self) -> bool:
        """True when the TPP executed without faulting anywhere."""
        return self.tpp.fault == FaultCode.NONE

    def hops(self) -> int:
        """Number of switches that executed the TPP."""
        return self.tpp.hops_executed()

    def per_hop_words(self) -> List[List[int]]:
        """Collected samples as one list of words per hop.

        "The end-host knows exactly how to interpret values in the packet"
        (§2.1) — this is that interpretation, driven by the per-hop
        footprint the assembler recorded in the header.
        """
        perhop = self.tpp.perhop_len_bytes
        word = self.tpp.word_size
        if perhop == 0 or perhop % word:
            # Zero or ragged per-hop footprint: nothing interpretable
            # (the latter only happens to corrupted/hostile packets).
            return []
        words_per_hop = perhop // word
        # Clamp to what the packet can actually hold: a malformed or
        # truncated TPP must not crash its reader.
        max_hops = len(self.tpp.memory) // perhop
        result: List[List[int]] = []
        for hop in range(min(self.hops(), max_hops)):
            base = hop * perhop
            result.append([self.tpp.read_word(base + i * word)
                           for i in range(words_per_hop)])
        return result

    def hop_words(self, hop: int) -> List[int]:
        """Samples collected at one hop."""
        return self.per_hop_words()[hop]

    def stack_words(self) -> List[int]:
        """All words up to the stack pointer (stack-addressed TPPs)."""
        word = self.tpp.word_size
        limit = min(self.tpp.sp,
                    len(self.tpp.memory) - len(self.tpp.memory) % word)
        return [self.tpp.read_word(i) for i in range(0, max(0, limit), word)]

    def word(self, index: int) -> int:
        """One absolute packet-memory word."""
        return self.tpp.read_word(index * self.tpp.word_size)


class TPPEndpoint:
    """Per-host TPP sender, echo responder, and demultiplexer."""

    def __init__(self, host: Host, default_dst_mac: Optional[int] = None,
                 echo_probes: bool = True,
                 retry_policy: Optional[RetryPolicy] = None,
                 verify_mode: str = "off",
                 verify_memory_map: Optional[MemoryMap] = None,
                 verify_max_instructions: int = DEFAULT_MAX_INSTRUCTIONS,
                 verify_max_hops: Optional[int] = None,
                 hop_budget: Optional[int] = None,
                 hop_budget_mode: str = "auto") -> None:
        if verify_mode not in VERIFY_MODES:
            raise ValueError(
                f"verify_mode must be one of {VERIFY_MODES}, "
                f"got {verify_mode!r}")
        if hop_budget_mode not in HOP_BUDGET_MODES:
            raise ValueError(
                f"hop_budget_mode must be one of {HOP_BUDGET_MODES}, "
                f"got {hop_budget_mode!r}")
        if hop_budget is not None and hop_budget < 1:
            raise ValueError(f"hop_budget must be >= 1: {hop_budget}")
        self.host = host
        self.default_dst_mac = default_dst_mac
        self.echo_probes = echo_probes
        #: Static-verification admission mode (see :data:`VERIFY_MODES`).
        self.verify_mode = verify_mode
        self.verify_memory_map = verify_memory_map
        self.verify_max_instructions = verify_max_instructions
        self.verify_max_hops = verify_max_hops
        #: Hops every probe from this endpoint must survive (typically
        #: the topology's diameter).  ``None`` trusts each program's own
        #: ``.hops`` geometry — the historical behaviour, which faults
        #: mid-path when the caller under-sized the allocation.
        self.hop_budget = hop_budget
        self.hop_budget_mode = hop_budget_mode
        self._admissions: (
            "OrderedDict[AdmissionKey, VerificationResult]") = OrderedDict()
        #: Auto-sized replacements keyed like the admission cache, so a
        #: probing loop pays for the resize (and its confirming
        #: re-verification) once per program.
        self._budgeted: "OrderedDict[AdmissionKey, AssembledProgram]" = (
            OrderedDict())
        #: Default policy for probes sent without an explicit one.
        #: ``None`` preserves the historical behaviour: no deadline, the
        #: request waits forever (fine on lossless topologies).
        self.retry_policy = retry_policy
        self._seq = itertools.count(0)
        self._probe_ids = itertools.count(0)
        self._pending: Dict[int, ProbeRequest] = {}
        #: (seq, task_id) of recently answered/expired requests, for
        #: classifying stragglers.  Values: ("done" | "timeout",
        #: first_sent_ns, attempts).
        self._completed: (
            "OrderedDict[Tuple[int, int], CompletedEntry]") = OrderedDict()
        self._retry_rng: Optional[random.Random] = None
        self._taps: List[TPPTap] = []
        #: Task ids whose *payload-carrying* TPPs get a trimmed echo: the
        #: data is delivered locally and the executed TPP section alone
        #: (no payload) is sent back to the source — how piggybacked
        #: probes ("using the flow's packets", §2.2) report home without
        #: re-transmitting the data.
        self._trimmed_echo_tasks: Set[int] = set()
        self.probes_sent = 0
        self.responses_received = 0
        self.tpps_echoed = 0
        self.trimmed_echoes = 0
        self.payloads_delivered = 0
        self.timeouts = 0
        self.retries = 0
        self.orphan_responses = 0
        self.duplicate_responses = 0
        self.late_responses = 0
        #: Sends refused by enforce-mode verification or the hop budget.
        self.probes_rejected = 0
        #: Sends whose program was transparently re-sized to the hop
        #: budget (``hop_budget_mode="auto"``).
        self.probes_auto_sized = 0
        #: Sends that carried a program with error diagnostics anyway
        #: (warn mode).
        self.probes_warned = 0
        #: Smoothed echo RTT (ns); 0 until the first echo is matched.
        #: Adaptive policies (``rtt_multiplier``) scale deadlines by it.
        self.rtt_ewma_ns = 0.0
        host.on_ethertype(ETHERTYPE_TPP, self._on_tpp_frame)

    @property
    def pending_count(self) -> int:
        """Outstanding probes awaiting an echo (bounded by ``SEQ_SPACE``)."""
        return len(self._pending)

    # ------------------------------------------------------------------ #
    # Admission (static verification)
    # ------------------------------------------------------------------ #

    def admit(self, program: AssembledProgram) -> VerificationResult:
        """Statically verify a program against this endpoint's settings.

        Returns the :class:`~repro.core.verifier.VerificationResult`
        (memoized per program fingerprint + memory geometry, so probing
        loops pay for the analysis once).  Does not apply the admission
        mode — :meth:`send` does; call this directly to inspect
        diagnostics or obtain the fast-path certificate.
        """
        key = self._admission_key(program)
        cached = self._admissions.get(key)
        if cached is not None:
            self._admissions.move_to_end(key)
            return cached
        result = verify_program(
            program, memory_map=self.verify_memory_map,
            max_instructions=self.verify_max_instructions,
            max_hops=self.verify_max_hops)
        self._admissions[key] = result
        while len(self._admissions) > _ADMISSION_CACHE_SIZE:
            self._admissions.popitem(last=False)
        return result

    def _admission_key(self, program: AssembledProgram) -> AdmissionKey:
        return (self._program_fingerprint(program),
                len(program.initial_memory), program.perhop_len_bytes,
                getattr(program, "hops", None))

    @staticmethod
    def _program_fingerprint(program: AssembledProgram) -> bytes:
        from repro.core.tpp import program_key_of
        key = program._program_key
        if key is None:
            key = program_key_of(program.instructions, program.mode,
                                 program.word_size)
        return key

    def _gate(self, program: AssembledProgram) -> None:
        """Apply the admission mode before a transmission."""
        if self.verify_mode == "off":
            return
        result = self.admit(program)
        if result.ok:
            return
        if self.verify_mode == "enforce":
            self.probes_rejected += 1
            raise VerificationError(result)
        self.probes_warned += 1

    # ------------------------------------------------------------------ #
    # Hop budgeting (verifier-driven allocation sizing)
    # ------------------------------------------------------------------ #

    def plan_hops(self, program: AssembledProgram) -> Optional[int]:
        """Hops the program's packet memory provably supports.

        The verifier's TPP009 budget scan, surfaced structurally
        (memoized with the rest of admission).  ``None`` means no hop
        inside the scan horizon can violate bounds — effectively
        unbounded, e.g. a program with a zero per-hop footprint.
        """
        return self.admit(program).hop_capacity

    def budget(self, program: AssembledProgram) -> AssembledProgram:
        """Reconcile a program's memory geometry with ``hop_budget``.

        The paper has the end-host "preallocate enough packet memory"
        for the path (§2.1), but nothing checked the caller's arithmetic:
        a program assembled for fewer hops than the path is long sails
        through admission and faults mid-path at hop N.
        With a budget configured, the verifier's measured capacity
        decides *before* transmission: a sufficient program passes
        through untouched; an under-sized one is either transparently
        re-sized (``auto`` — only when the literal pool is empty, so
        appending zeroed stack/hop words cannot shift any operand the
        instructions reference) or refused with a synthetic error-grade
        ``TPP009`` (``reject``, or ``auto`` when re-sizing is unsound).
        The re-sized program is re-verified to confirm the new capacity
        before anything is sent.
        """
        if self.hop_budget is None:
            return program
        capacity = self.plan_hops(program)
        if capacity is None or capacity >= self.hop_budget:
            return program
        key = self._admission_key(program)
        cached = self._budgeted.get(key)
        if cached is not None:
            self._budgeted.move_to_end(key)
            self.probes_auto_sized += 1
            return cached
        word = program.word_size
        poolless = program.pool_base_word * word == len(
            program.initial_memory)
        if (self.hop_budget_mode == "reject" or not poolless
                or program.perhop_len_bytes <= 0):
            raise self._refuse_budget(program, capacity, poolless)
        pad_bytes = (self.hop_budget - capacity) * program.perhop_len_bytes
        pad_words = pad_bytes // word
        resized = dataclasses.replace(
            program,
            initial_memory=program.initial_memory + bytes(pad_bytes),
            memory_words=program.memory_words + pad_words,
            pool_base_word=program.pool_base_word + pad_words,
            hops=self.hop_budget,
            _verification=None)
        confirmed = self.admit(resized).hop_capacity
        if confirmed is not None and confirmed < self.hop_budget:
            raise self._refuse_budget(program, capacity, poolless)
        self._budgeted[key] = resized
        while len(self._budgeted) > _ADMISSION_CACHE_SIZE:
            self._budgeted.popitem(last=False)
        self.probes_auto_sized += 1
        return resized

    def _refuse_budget(self, program: AssembledProgram,
                       capacity: int, poolless: bool) -> VerificationError:
        self.probes_rejected += 1
        why = ("" if self.hop_budget_mode == "reject" else
               "; auto-sizing is unsound here" +
               ("" if poolless else
                " (the literal pool sits where the memory would grow)"))
        diagnostic = Diagnostic(
            code="TPP009", severity="error",
            message=(f"endpoint hop budget {self.hop_budget} exceeds the "
                     f"{capacity} hop(s) supported by the program's "
                     f"{len(program.initial_memory)} B of packet "
                     f"memory{why}"),
            hop=capacity)
        return VerificationError(
            VerificationResult(diagnostics=[diagnostic],
                               hop_capacity=capacity))

    # ------------------------------------------------------------------ #
    # Sending
    # ------------------------------------------------------------------ #

    def send(self, program: AssembledProgram, dst_mac: Optional[int] = None,
             payload: object = None, task_id: int = 0,
             on_response: Optional[ResponseCallback] = None,
             on_timeout: Optional[TimeoutCallback] = None,
             retry_policy: Optional[RetryPolicy] = None) -> int:
        """Instantiate and transmit a program; returns the sequence number.

        ``on_response`` fires when the echoed, fully-executed TPP returns.
        With a :class:`RetryPolicy` (per-call or the endpoint default),
        the probe is retransmitted on deadline expiry and ``on_timeout``
        fires once all attempts are exhausted.
        """
        if dst_mac is None:
            dst_mac = self.default_dst_mac
        if dst_mac is None:
            raise ValueError("no destination MAC for TPP probe")
        program = self.budget(program)
        self._gate(program)
        policy = (retry_policy if retry_policy is not None
                  else self.retry_policy)
        record = self._register(program, dst_mac, payload, task_id,
                                on_response, on_timeout, policy)
        seq = record.seq if record is not None else self._alloc_free_seq()
        tpp = program.build(payload=payload, task_id=task_id, seq=seq)
        frame = EthernetFrame(dst=dst_mac, src=self.host.mac,
                              ethertype=ETHERTYPE_TPP, payload=tpp)
        self.probes_sent += 1
        self.host.send_frame(frame)
        return seq

    def send_tpp(self, tpp: TPPSection, dst_mac: int) -> None:
        """Transmit an already-built TPP section (used by ndb's tagger)."""
        frame = EthernetFrame(dst=dst_mac, src=self.host.mac,
                              ethertype=ETHERTYPE_TPP, payload=tpp)
        self.host.send_frame(frame)

    def wrap(self, program: AssembledProgram, payload: object,
             task_id: int = 0,
             on_response: Optional[ResponseCallback] = None,
             on_timeout: Optional[TimeoutCallback] = None,
             retry_policy: Optional[RetryPolicy] = None,
             dst_mac: Optional[int] = None) -> TPPSection:
        """Build a data-carrying TPP (a piggybacked probe) and register
        its response callback; the caller transmits the frame.

        The receiving endpoint must have trimmed echoes enabled for this
        task id (see :meth:`enable_trimmed_echo`), otherwise no response
        comes back.  ``dst_mac`` (the intended receiver) is optional but
        enables response matching and standalone retransmission on loss.
        """
        program = self.budget(program)
        self._gate(program)
        policy = (retry_policy if retry_policy is not None
                  else self.retry_policy)
        record = self._register(program, dst_mac, None, task_id,
                                on_response, on_timeout, policy)
        seq = record.seq if record is not None else self._alloc_free_seq()
        return program.build(payload=payload, task_id=task_id, seq=seq)

    def enable_trimmed_echo(self, task_id: int) -> None:
        """Echo executed TPPs of this task back (payload stripped) even
        when they carry data."""
        self._trimmed_echo_tasks.add(task_id)

    # ------------------------------------------------------------------ #
    # Request records and the sequence window
    # ------------------------------------------------------------------ #

    def _alloc_free_seq(self) -> int:
        """Next wire seq whose slot has no probe in flight."""
        for _ in range(SEQ_SPACE):
            seq = next(self._seq) % SEQ_SPACE
            if seq not in self._pending:
                return seq
        raise ProbeWindowFull(
            f"{self.host.name}: all {SEQ_SPACE} probe sequence numbers "
            f"are in flight")

    def _register(self, program: Optional[AssembledProgram],
                  dst_mac: Optional[int], payload: object, task_id: int,
                  on_response: Optional[ResponseCallback],
                  on_timeout: Optional[TimeoutCallback],
                  policy: Optional[RetryPolicy]) -> Optional[ProbeRequest]:
        """Create and arm a request record (``None`` for fire-and-forget)."""
        if on_response is None and on_timeout is None and policy is None:
            return None
        seq = self._alloc_free_seq()
        record = ProbeRequest(
            probe_id=next(self._probe_ids), seq=seq, task_id=task_id,
            responder_mac=dst_mac, program=program, payload=payload,
            on_response=on_response, on_timeout=on_timeout, policy=policy,
            first_sent_ns=self.host.sim.now_ns)
        self._pending[seq] = record
        if policy is not None:
            record.timer = OneShotTimer(self.host.sim,
                                        self._on_deadline, record)
            record.timer.start(policy.timeout_for(1, self._jitter_rng(),
                                                  self.rtt_ewma_ns))
        return record

    def _jitter_rng(self) -> random.Random:
        if self._retry_rng is None:
            self._retry_rng = self.host.sim.rng.stream(
                f"tpp-retry/{self.host.name}")
        return self._retry_rng

    def _on_deadline(self, record: ProbeRequest) -> None:
        if self._pending.get(record.seq) is not record:
            return  # answered in the same instant; stale timer
        policy = record.policy
        assert policy is not None
        can_retry = (record.attempts < policy.max_attempts
                     and record.program is not None
                     and record.responder_mac is not None)
        if not can_retry:
            del self._pending[record.seq]
            self._note_completed(record, "timeout")
            self.timeouts += 1
            if record.on_timeout is not None:
                record.on_timeout(record)
            return
        assert record.program is not None
        assert record.responder_mac is not None
        record.attempts += 1
        self.retries += 1
        # Retransmit standalone: for piggybacked probes the data's own
        # transport owns the payload, the probe layer only re-asks the
        # question.  Same seq — it is the same logical request.
        tpp = record.program.build(payload=record.payload,
                                   task_id=record.task_id, seq=record.seq)
        frame = EthernetFrame(dst=record.responder_mac, src=self.host.mac,
                              ethertype=ETHERTYPE_TPP, payload=tpp)
        self.probes_sent += 1
        self.host.send_frame(frame)
        assert record.timer is not None
        record.timer.start(policy.timeout_for(record.attempts,
                                              self._jitter_rng(),
                                              self.rtt_ewma_ns))

    def _note_completed(self, record: ProbeRequest, outcome: str) -> None:
        key = (record.seq, record.task_id)
        self._completed[key] = (outcome, record.first_sent_ns,
                                record.attempts)
        self._completed.move_to_end(key)
        while len(self._completed) > _COMPLETED_MEMORY:
            self._completed.popitem(last=False)

    def _fold_rtt(self, rtt: float) -> None:
        if self.rtt_ewma_ns:
            self.rtt_ewma_ns += RTT_EWMA_ALPHA * (rtt - self.rtt_ewma_ns)
        else:
            self.rtt_ewma_ns = float(rtt)

    # ------------------------------------------------------------------ #
    # Receiving
    # ------------------------------------------------------------------ #

    def add_tap(self, tap: TPPTap) -> None:
        """Observe every executed TPP that terminates at this host."""
        self._taps.append(tap)

    def _on_tpp_frame(self, frame: EthernetFrame) -> None:
        tpp = frame.payload
        if not isinstance(tpp, TPPSection):
            return
        if tpp.done:
            self._on_response(tpp, frame)
            return
        for tap in self._taps:
            tap(tpp, frame)
        if isinstance(tpp.payload, Datagram):
            self._deliver_payload(tpp.payload, frame)
            if tpp.task_id in self._trimmed_echo_tasks:
                trimmed = tpp.copy()
                trimmed.payload = None
                self.trimmed_echoes += 1
                self._echo(trimmed, frame)
        elif self.echo_probes:
            self._echo(tpp, frame)

    def _on_response(self, tpp: TPPSection, frame: EthernetFrame) -> None:
        self.responses_received += 1
        record = self._pending.get(tpp.seq)
        if record is None or not self._matches(record, tpp, frame):
            entry = self._completed.get((tpp.seq, tpp.task_id))
            outcome = entry[0] if entry is not None else None
            if outcome == "done":
                self.duplicate_responses += 1
            elif outcome == "timeout":
                assert entry is not None
                self.late_responses += 1
                # A late echo is still a valid RTT sample (Karn's rule
                # permitting), and the most important one: it proves the
                # deadline underestimated the path.  Folding it lets the
                # adaptive deadline escape a too-small initial estimate
                # even when *every* early probe is expiring.
                _, sent_ns, attempts = entry
                if attempts == 1:
                    self._fold_rtt(self.host.sim.now_ns - sent_ns)
            else:
                self.orphan_responses += 1
            return
        del self._pending[tpp.seq]
        if record.timer is not None:
            record.timer.cancel()
        self._note_completed(record, "done")
        now = self.host.sim.now_ns
        rtt = now - record.first_sent_ns
        if record.attempts == 1:
            # Karn's rule: a retransmitted probe's echo is ambiguous
            # (original or retry?), so only clean samples feed the RTT.
            self._fold_rtt(rtt)
        if record.on_response is not None:
            record.on_response(TPPResultView(tpp, now, rtt_ns=rtt))

    @staticmethod
    def _matches(record: ProbeRequest, tpp: TPPSection,
                 frame: EthernetFrame) -> bool:
        """Does this echo answer the recorded request?

        Task id must agree, and when the request knew its responder the
        echo must come from that host — a reflected or misrouted echo of
        someone else's probe must not consume our record.
        """
        if tpp.task_id != record.task_id:
            return False
        if (record.responder_mac is not None
                and frame.src != record.responder_mac):
            return False
        return True

    def _echo(self, tpp: TPPSection, frame: EthernetFrame) -> None:
        tpp.mark_done()
        self.tpps_echoed += 1
        echo = EthernetFrame(dst=frame.src, src=self.host.mac,
                             ethertype=ETHERTYPE_TPP, payload=tpp)
        self.host.send_frame(echo)

    def _deliver_payload(self, datagram: Datagram,
                         frame: EthernetFrame) -> None:
        self.payloads_delivered += 1
        self.host.deliver_datagram(datagram, frame)
