"""Per-flow rate limiting (the enforcement half of RCP*).

"The implementation consists of a rate limiter and a rate controller at
end-hosts for every flow" (§2.2).  :class:`TokenBucket` is the classic
token-bucket shaper; :class:`PacedSender` is the simulator-friendly packet
pacer built on it that emits fixed-size datagrams whenever tokens allow.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.sim.simulator import Simulator
from repro.sim.timers import OneShotTimer


class TokenBucket:
    """A token bucket metered in bytes against the simulated clock."""

    def __init__(self, sim: Simulator, rate_bps: int,
                 burst_bytes: int = 3000) -> None:
        if rate_bps < 0:
            raise ValueError(f"rate must be >= 0, got {rate_bps}")
        self.sim = sim
        self._rate_bps = rate_bps
        self.burst_bytes = burst_bytes
        self._tokens = float(burst_bytes)
        self._last_refill_ns = sim.now_ns

    @property
    def rate_bps(self) -> int:
        """Current token fill rate."""
        return self._rate_bps

    def set_rate(self, rate_bps: int) -> None:
        """Change the fill rate (refills at the old rate first)."""
        self._refill()
        self._rate_bps = max(0, int(rate_bps))

    def _refill(self) -> None:
        now = self.sim.now_ns
        elapsed_s = (now - self._last_refill_ns) / 1e9
        self._tokens = min(self.burst_bytes,
                           self._tokens + elapsed_s * self._rate_bps / 8)
        self._last_refill_ns = now

    def try_consume(self, n_bytes: int) -> bool:
        """Take ``n_bytes`` of tokens if available."""
        self._refill()
        if self._tokens >= n_bytes:
            self._tokens -= n_bytes
            return True
        return False

    def time_until_available_ns(self, n_bytes: int) -> int:
        """Nanoseconds until ``n_bytes`` of tokens will exist (0 if now)."""
        self._refill()
        deficit = n_bytes - self._tokens
        if deficit <= 0:
            return 0
        if self._rate_bps == 0:
            return -1  # never at the current rate
        return max(1, round(deficit * 8 / self._rate_bps * 1e9))


class PacedSender:
    """Emits fixed-size packets at a controllable rate.

    ``send_fn(packet_bytes)`` is called for every emission; the caller
    builds and transmits the actual datagram.  The sender self-schedules:
    after each emission it sleeps exactly until the bucket can cover the
    next packet, so the achieved rate tracks the configured rate without
    busy polling.
    """

    def __init__(self, sim: Simulator, rate_bps: int, packet_bytes: int,
                 send_fn: Callable[[int], None],
                 burst_bytes: Optional[int] = None) -> None:
        if packet_bytes <= 0:
            raise ValueError(f"packet size must be positive: {packet_bytes}")
        if burst_bytes is None:
            burst_bytes = 2 * packet_bytes
        self.sim = sim
        self.packet_bytes = packet_bytes
        self.send_fn = send_fn
        self.bucket = TokenBucket(sim, rate_bps, burst_bytes)
        self._timer = OneShotTimer(sim, self._pump)
        self._running = False
        self.packets_sent = 0
        self.bytes_sent = 0

    @property
    def rate_bps(self) -> int:
        """Current pacing rate."""
        return self.bucket.rate_bps

    def set_rate(self, rate_bps: int) -> None:
        """Change the pacing rate; wakes the pump if it was starved."""
        was_zero = self.bucket.rate_bps == 0
        self.bucket.set_rate(rate_bps)
        if self._running and was_zero and rate_bps > 0:
            self._schedule_next()

    def start(self) -> None:
        """Begin emitting packets."""
        if self._running:
            return
        self._running = True
        self._pump()

    def stop(self) -> None:
        """Stop emitting packets."""
        self._running = False
        self._timer.cancel()

    def _pump(self) -> None:
        if not self._running:
            return
        while self.bucket.try_consume(self.packet_bytes):
            self.send_fn(self.packet_bytes)
            self.packets_sent += 1
            self.bytes_sent += self.packet_bytes
        self._schedule_next()

    def _schedule_next(self) -> None:
        wait_ns = self.bucket.time_until_available_ns(self.packet_bytes)
        if wait_ns < 0:
            return  # rate is zero; set_rate() will restart the pump
        self._timer.start(max(wait_ns, 1))
