"""Legacy setup shim.

Exists so `pip install -e .` works in offline environments without the
`wheel` package (pip's legacy editable path needs a setup.py). All real
metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
